// Package requester implements the Requester side of the protocol: "a
// Requester is an application that is capable of issuing access requests to
// resources on Hosts which are protected by an Authorization Manager. A
// Requester is able to obtain the necessary authorization token from AM.
// Such token is later presented to the Host" (Section V.A.4).
//
// The Client wraps an http.Client with the token choreography of Figs. 5
// and 6: a tokenless access is answered by the Host with a referral to the
// owner's AM; the Client obtains a token there (supplying claims for terms,
// or polling for real-time consent) and retries with the token attached.
// Tokens are cached per (host origin, realm), so "a Requester may need to
// obtain it only once and can use it for multiple subsequent access
// requests".
package requester

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"umac/internal/amclient"
	"umac/internal/core"
	"umac/internal/pep"
)

// Errors surfaced by the Client beyond plain transport failures.
var (
	// ErrDenied: the AM refused a token (policy deny).
	ErrDenied = core.ErrAccessDenied
	// ErrConsentDenied: the owner resolved the consent request negatively.
	ErrConsentDenied = errors.New("requester: owner denied consent")
	// ErrConsentTimeout: the owner did not resolve consent in time.
	ErrConsentTimeout = errors.New("requester: consent poll timed out")
)

// TermsError reports terms the Requester must satisfy with claims.
type TermsError struct {
	Terms []string
}

// Error implements error.
func (e *TermsError) Error() string {
	return "requester: required terms not satisfied: " + strings.Join(e.Terms, ", ")
}

// Config configures a Client.
type Config struct {
	// ID is the Requester's application identity.
	ID core.RequesterID
	// Subject is the human identity the Requester acts for (may be empty
	// for autonomous services).
	Subject core.UserID
	// Claims are presented with token requests (terms extension, e.g.
	// {"payment": "rcpt-42"}).
	Claims map[string]string
	// HTTPClient performs all calls; nil means http.DefaultClient.
	HTTPClient *http.Client
	// ConsentPollInterval is how often to poll a pending consent ticket
	// (default 25ms — in-process AMs resolve quickly; real deployments
	// would use seconds).
	ConsentPollInterval time.Duration
	// ConsentTimeout bounds the total consent wait (default 5s).
	ConsentTimeout time.Duration
	// DisableConsentStream pins consent waits to the polling path instead
	// of subscribing to the AM's /v1/events/consent stream. The stream is
	// the default (resolution arrives the moment the owner acts); polling
	// remains as the automatic fallback when the stream fails, and as the
	// measured baseline in benchmarks.
	DisableConsentStream bool
	// Tracer records protocol events.
	Tracer *core.Tracer
}

// Client is a protocol-aware HTTP client for Requesters.
type Client struct {
	id           core.RequesterID
	subject      core.UserID
	claims       map[string]string
	http         *http.Client
	pollInterval time.Duration
	pollTimeout  time.Duration
	noStream     bool
	tracer       *core.Tracer

	// ctx parents every consent wait (stream read or poll sleep); Close
	// cancels it so shutdown never waits out a parked connection.
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.RWMutex
	tokens map[string]string // origin+"|"+realm → token
	last   map[string]string // origin → most recently used token
}

// New constructs a Client.
func New(cfg Config) *Client {
	h := cfg.HTTPClient
	if h == nil {
		h = http.DefaultClient
	}
	poll := cfg.ConsentPollInterval
	if poll <= 0 {
		poll = 25 * time.Millisecond
	}
	timeout := cfg.ConsentTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	claims := make(map[string]string, len(cfg.Claims))
	for k, v := range cfg.Claims {
		claims[k] = v
	}
	c := &Client{
		id:           cfg.ID,
		subject:      cfg.Subject,
		claims:       claims,
		http:         h,
		pollInterval: poll,
		pollTimeout:  timeout,
		noStream:     cfg.DisableConsentStream,
		tracer:       cfg.Tracer,
		tokens:       make(map[string]string),
		last:         make(map[string]string),
	}
	c.ctx, c.cancel = context.WithCancel(context.Background())
	return c
}

// Close cancels any in-flight consent wait — a parked stream read or a
// poll sleep unblocks immediately — and makes future consent waits fail
// fast. Cached tokens keep working; only waiting stops.
func (c *Client) Close() error {
	c.cancel()
	return nil
}

// ID returns the Requester identity.
func (c *Client) ID() core.RequesterID { return c.id }

// SetClaim adds or replaces a claim presented with future token requests.
func (c *Client) SetClaim(name, value string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.claims[name] = value
}

// ForgetTokens drops all cached tokens (e.g. to simulate a fresh session).
func (c *Client) ForgetTokens() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tokens = make(map[string]string)
	c.last = make(map[string]string)
}

func (c *Client) trace(phase core.Phase, from, to, op, detail string) {
	c.tracer.Record(phase, from, to, op, detail)
}

// Get fetches a URL performing the full authorization choreography for the
// given action. The caller owns the response body.
func (c *Client) Get(rawURL string, action core.Action) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodGet, rawURL, nil)
	if err != nil {
		return nil, fmt.Errorf("requester: %w", err)
	}
	return c.Do(req, action, nil)
}

// Fetch is Get plus body read; non-2xx statuses become errors.
func (c *Client) Fetch(rawURL string, action core.Action) ([]byte, error) {
	resp, err := c.Get(rawURL, action)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("requester: read body: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, fmt.Errorf("requester: %s: status %d: %s", rawURL, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return body, nil
}

// Post sends a body performing the authorization choreography (body is
// buffered so the request can be replayed after token acquisition).
func (c *Client) Post(rawURL, contentType string, body []byte, action core.Action) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodPost, rawURL, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("requester: %w", err)
	}
	req.Header.Set("Content-Type", contentType)
	return c.Do(req, action, body)
}

// Do executes req with the token choreography. body must carry the request
// payload for replay (nil for bodyless requests).
func (c *Client) Do(req *http.Request, action core.Action, body []byte) (*http.Response, error) {
	origin := req.URL.Scheme + "://" + req.URL.Host

	send := func(tok string) (*http.Response, error) {
		clone := req.Clone(req.Context())
		if body != nil {
			clone.Body = io.NopCloser(bytes.NewReader(body))
			clone.ContentLength = int64(len(body))
		}
		if tok != "" {
			clone.Header.Set("Authorization", pep.TokenScheme+" "+tok)
		}
		c.trace(core.PhaseAccessingResource, "requester:"+string(c.id), origin,
			"access-request", fmt.Sprintf("%s %s token=%v", action, req.URL.Path, tok != ""))
		return c.http.Do(clone)
	}

	c.mu.RLock()
	lastTok := c.last[origin]
	c.mu.RUnlock()

	resp, err := send(lastTok)
	if err != nil {
		return nil, fmt.Errorf("requester: %w", err)
	}
	if resp.StatusCode != http.StatusUnauthorized {
		return resp, nil
	}
	amURL := resp.Header.Get(pep.HeaderAM)
	if amURL == "" {
		// 401 from something that is not a UMAC referral: pass through.
		return resp, nil
	}
	referral := referralInfo{
		am:       amURL,
		host:     core.HostID(resp.Header.Get(pep.HeaderHost)),
		realm:    core.RealmID(resp.Header.Get(pep.HeaderRealm)),
		resource: core.ResourceID(resp.Header.Get(pep.HeaderResource)),
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// A cached token for this (origin, realm) that we did not just try is
	// worth one attempt before going to the AM.
	c.mu.RLock()
	cached := c.tokens[origin+"|"+string(referral.realm)]
	c.mu.RUnlock()
	if cached != "" && cached != lastTok {
		resp, err := send(cached)
		if err != nil {
			return nil, fmt.Errorf("requester: %w", err)
		}
		if resp.StatusCode != http.StatusUnauthorized {
			c.remember(origin, referral.realm, cached)
			return resp, nil
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	tok, err := c.ObtainToken(referral.am, referral.host, referral.realm, referral.resource, action)
	if err != nil {
		return nil, err
	}
	c.remember(origin, referral.realm, tok)
	return send(tok)
}

type referralInfo struct {
	am       string
	host     core.HostID
	realm    core.RealmID
	resource core.ResourceID
}

func (c *Client) remember(origin string, realm core.RealmID, tok string) {
	c.mu.Lock()
	c.tokens[origin+"|"+string(realm)] = tok
	c.last[origin] = tok
	c.mu.Unlock()
}

// ObtainToken runs the Fig. 5 flow against the AM directly: request a
// token, satisfying terms with configured claims and waiting on real-time
// consent if the policy demands it.
func (c *Client) ObtainToken(amURL string, host core.HostID, realm core.RealmID, resource core.ResourceID, action core.Action) (string, error) {
	c.mu.RLock()
	claims := make(map[string]string, len(c.claims))
	for k, v := range c.claims {
		claims[k] = v
	}
	c.mu.RUnlock()
	req := core.TokenRequest{
		Requester: c.id,
		Subject:   c.subject,
		Host:      host,
		Realm:     realm,
		Resource:  resource,
		Action:    action,
		Claims:    claims,
	}
	c.trace(core.PhaseObtainingToken, "requester:"+string(c.id), "am",
		"token-request", fmt.Sprintf("%s/%s %s", host, realm, action))
	tr, err := c.am(amURL).RequestToken(req)
	switch {
	case isDenied(err):
		return "", fmt.Errorf("%w: AM refused token", ErrDenied)
	case err != nil:
		return "", fmt.Errorf("requester: token request: %w", err)
	}
	switch {
	case tr.Token != "":
		c.trace(core.PhaseObtainingToken, "am", "requester:"+string(c.id), "token-received", "")
		return tr.Token, nil
	case tr.PendingConsent != "":
		return c.waitConsent(amURL, tr.PendingConsent)
	case len(tr.RequiredTerms) > 0:
		return "", &TermsError{Terms: tr.RequiredTerms}
	default:
		return "", fmt.Errorf("requester: empty token response")
	}
}

// am returns a typed client for the referred AM (Requester calls are
// unauthenticated: identity travels in the request body, mediated by
// policy, consent and terms).
func (c *Client) am(amURL string) *amclient.Client {
	return amclient.New(amclient.Config{BaseURL: amURL, HTTPClient: c.http})
}

// isDenied classifies a token-endpoint error as a policy deny: the
// structured access_denied code (which unwraps to the sentinel), or —
// from a pre-v1 AM with no machine-readable code — a bare 403.
func isDenied(err error) bool {
	if errors.Is(err, core.ErrAccessDenied) {
		return true
	}
	var ae *core.APIError
	return errors.As(err, &ae) && ae.Code == core.CodeUnknown && ae.Status == http.StatusForbidden
}

// waitConsent waits for the owner to resolve the consent ticket — the
// asynchronous Requester↔AM interaction of Section V.D. The default path
// subscribes to the AM's consent event stream (GET /v1/events/consent):
// resolution arrives the instant the owner acts, with the minted token in
// the event payload. Persistent stream failure falls back to the polling
// path automatically; DisableConsentStream pins it there. Either way the
// wait is bounded by ConsentTimeout and cancelled by Close.
func (c *Client) waitConsent(amURL, ticket string) (string, error) {
	ctx, cancel := context.WithTimeout(c.ctx, c.pollTimeout)
	defer cancel()
	if c.noStream {
		return c.pollConsent(ctx, amURL, ticket)
	}
	c.trace(core.PhaseObtainingToken, "requester:"+string(c.id), "am",
		"consent-stream-start", ticket)
	stream := c.am(amURL).Stream(amclient.StreamConfig{
		Path:  "/events/consent",
		Query: url.Values{core.ParamTicket: {ticket}},
	})
	defer stream.Close()
	if err := stream.Connect(ctx); err != nil {
		if errors.Is(err, amclient.ErrStreamFailed) {
			c.trace(core.PhaseObtainingToken, "requester:"+string(c.id), "am",
				"consent-stream-fallback", err.Error())
			return c.pollConsent(ctx, amURL, ticket)
		}
		return "", c.consentWaitErr(ctx, err)
	}
	// The owner may have resolved the ticket between RequestToken handing
	// it out and the subscription registering just now — an event published
	// in that window had no subscriber and will never replay. One status
	// check closes the race; everything after it arrives via the stream.
	if st, err := c.am(amURL).TokenStatus(ticket); err == nil && st.Resolved {
		if !st.Approved {
			return "", ErrConsentDenied
		}
		c.trace(core.PhaseObtainingToken, "am", "requester:"+string(c.id),
			"consent-approved", ticket)
		return st.Token, nil
	}
	for {
		ev, err := stream.Next(ctx)
		switch {
		case err == nil:
		case errors.Is(err, amclient.ErrStreamFailed):
			// The stream cannot be established (old AM, proxy trouble):
			// degrade to the polling interaction for the remaining budget.
			c.trace(core.PhaseObtainingToken, "requester:"+string(c.id), "am",
				"consent-stream-fallback", err.Error())
			return c.pollConsent(ctx, amURL, ticket)
		default:
			return "", c.consentWaitErr(ctx, err)
		}
		switch ev.Type {
		case core.EventConsent:
			if st := ev.Consent; st != nil && st.Resolved {
				if !st.Approved {
					return "", ErrConsentDenied
				}
				c.trace(core.PhaseObtainingToken, "am", "requester:"+string(c.id),
					"consent-approved", ticket)
				return st.Token, nil
			}
		case core.EventResync:
			// The resolution may be among the lost events: check the poll
			// endpoint once, then keep streaming for a live resolution.
			st, err := c.am(amURL).TokenStatus(ticket)
			if err == nil && st.Resolved {
				if !st.Approved {
					return "", ErrConsentDenied
				}
				return st.Token, nil
			}
		}
	}
}

// consentWaitErr classifies a consent-wait context failure: the overall
// deadline means the owner never acted (ErrConsentTimeout); cancellation
// means Close was called.
func (c *Client) consentWaitErr(ctx context.Context, err error) error {
	if c.ctx.Err() != nil {
		return fmt.Errorf("requester: client closed: %w", c.ctx.Err())
	}
	if ctx.Err() != nil {
		return ErrConsentTimeout
	}
	return fmt.Errorf("requester: consent wait: %w", err)
}

// pollConsent is the polling interaction: ask the ticket-status endpoint
// on an interval until resolution, deadline, or Close.
func (c *Client) pollConsent(ctx context.Context, amURL, ticket string) (string, error) {
	c.trace(core.PhaseObtainingToken, "requester:"+string(c.id), "am",
		"consent-poll-start", ticket)
	am := c.am(amURL)
	for {
		st, err := am.TokenStatus(ticket)
		if err != nil {
			return "", fmt.Errorf("requester: consent poll: %w", err)
		}
		if st.Resolved {
			if !st.Approved {
				return "", ErrConsentDenied
			}
			c.trace(core.PhaseObtainingToken, "am", "requester:"+string(c.id),
				"consent-approved", ticket)
			return st.Token, nil
		}
		t := time.NewTimer(c.pollInterval)
		select {
		case <-ctx.Done():
			t.Stop()
			return "", c.consentWaitErr(ctx, ctx.Err())
		case <-t.C:
		}
	}
}
