package am

// The 5xx sanitization audit. With a fault-injected store (every write
// fails with a path-laden error) the suite walks EVERY registered route
// and asserts the leak-proof contract of the error surface:
//
//   - no response body, whatever its status, ever carries the internal
//     fault text (paths, WAL segment names, wrapped error chains);
//   - every 5xx wears the structured envelope with the fixed sanitized
//     message and a request ID;
//   - the full cause IS captured server-side, keyed by that request ID,
//     so operators lose nothing the wire no longer shows.
//
// The walk is generic on purpose: a new route added without riding the
// webutil funnel fails here, not in a code review.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"umac/internal/core"
	"umac/internal/httpsig"
	"umac/internal/identity"
	"umac/internal/webutil"
)

// secretDetail is the fault text injected into the store: it looks like
// what a real disk failure drags along — an absolute path, a segment
// name, an errno-style suffix. None of it may reach the wire.
const secretDetail = "/var/lib/umac/wal/segment-000042.wal: disk full (errno 28)"

// leakMarkers are the substrings the audit hunts for in response bodies.
var leakMarkers = []string{
	"/var/lib",
	"segment-000042",
	"disk full",
	"errno",
	"internal fault", // the core.ErrInternalFault sentinel text
}

// fillParams substitutes dummy values for the mux path wildcards.
var fillParams = strings.NewReplacer(
	"{id}", "p1",
	"{group}", "g1",
	"{user}", "carol",
	"{owner}", "bob",
	"{ticket}", "tkt-1",
)

// captureInternalLog swaps in a recording sink for the server-side error
// log and returns the capture map (request ID -> full message), restoring
// the previous sink when the test ends.
func captureInternalLog(t *testing.T) func(requestID string) (string, bool) {
	t.Helper()
	var mu sync.Mutex
	byID := map[string]string{}
	prev := webutil.SetInternalErrorLog(func(requestID string, e *core.APIError) {
		mu.Lock()
		byID[requestID] = e.Message
		mu.Unlock()
	})
	t.Cleanup(func() { webutil.SetInternalErrorLog(prev) })
	return func(id string) (string, bool) {
		mu.Lock()
		defer mu.Unlock()
		m, ok := byID[id]
		return m, ok
	}
}

func TestSanitizationAuditEveryRoute(t *testing.T) {
	f := newHTTPFixture(t)
	lookup := captureInternalLog(t)

	// Establish a pairing BEFORE the fault so the signed channel can
	// authenticate, and a policy so mutation routes get past validation.
	code, _ := f.am.ApprovePairing(core.PairingRequest{Host: "webpics", User: "bob"})
	pr, err := f.am.ExchangeCode(code, "webpics")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.am.RegisterRealm(pr.PairingID, core.ProtectRequest{Realm: "travel"}); err != nil {
		t.Fatal(err)
	}
	pol, err := f.am.CreatePolicy("bob", simplePolicy("bob"))
	if err != nil {
		t.Fatal(err)
	}

	f.am.Store().FailWrites(errors.New(secretDetail))
	t.Cleanup(func() { f.am.Store().FailWrites(nil) })

	// Route-specific request bodies where an empty object would bounce off
	// validation before reaching the store.
	bodies := map[string]any{
		"POST /v1/policies":               simplePolicy("bob"),
		"PUT /v1/policies/{id}":           simplePolicy("bob"),
		"POST /v1/groups/{group}/members": core.GroupMemberRequest{User: "carol"},
		"POST /v1/custodians":             core.CustodianRequest{Custodian: "carol"},
		"POST /v1/api/protect":            core.ProtectRequest{Realm: "beach"},
		"POST /v1/links/general":          core.LinkGeneralRequest{Realm: "travel", Policy: pol.ID},
		"POST /v1/links/specific":         core.LinkSpecificRequest{Host: "webpics", Resource: "img1", Policy: pol.ID},
	}

	client := &http.Client{Timeout: 10 * time.Second}
	fiveHundreds := 0
	for _, rt := range f.am.Routes() {
		key := rt.Method + " " + rt.Path
		t.Run(strings.ReplaceAll(key, "/", "_"), func(t *testing.T) {
			path := fillParams.Replace(rt.Path)
			var body io.Reader
			if b, ok := bodies[key]; ok {
				raw, err := json.Marshal(b)
				if err != nil {
					t.Fatal(err)
				}
				body = bytes.NewReader(raw)
			} else if rt.Method == http.MethodPost || rt.Method == http.MethodPut {
				body = strings.NewReader("{}")
			}
			req, err := http.NewRequest(rt.Method, f.srv.URL+path, body)
			if err != nil {
				t.Fatal(err)
			}
			if body != nil {
				req.Header.Set("Content-Type", "application/json")
			}
			switch {
			case strings.HasPrefix(rt.Path, "/v1/events"):
				// Streaming routes stay unauthenticated in the walk so they
				// answer immediately instead of holding the connection open.
			case strings.HasPrefix(rt.Path, "/v1/api/"):
				if err := httpsig.Sign(req, pr.PairingID, pr.Secret); err != nil {
					t.Fatal(err)
				}
			default:
				req.Header.Set(identity.DefaultUserHeader, "bob")
			}
			resp, err := client.Do(req)
			if err != nil {
				t.Fatalf("%s: %v", key, err)
			}
			defer resp.Body.Close()
			raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			if err != nil {
				t.Fatalf("%s: read body: %v", key, err)
			}
			for _, marker := range leakMarkers {
				if strings.Contains(string(raw), marker) {
					t.Fatalf("%s: status %d body leaks %q:\n%s", key, resp.StatusCode, marker, raw)
				}
			}
			if resp.StatusCode < 500 {
				return
			}
			fiveHundreds++
			var e core.APIError
			if err := json.Unmarshal(raw, &e); err != nil {
				t.Fatalf("%s: 5xx body is not the structured envelope: %v\n%s", key, err, raw)
			}
			if e.Code != core.CodeInternal {
				t.Errorf("%s: 5xx code = %q, want %q", key, e.Code, core.CodeInternal)
			}
			if e.Message != webutil.SanitizedMessage {
				t.Errorf("%s: 5xx message = %q, want the fixed %q", key, e.Message, webutil.SanitizedMessage)
			}
			if e.RequestID == "" {
				t.Fatalf("%s: 5xx envelope has no request ID; the server-side cause is uncorrelatable", key)
			}
			full, ok := lookup(e.RequestID)
			if !ok {
				t.Fatalf("%s: request %s produced a 500 but no server-side log entry", key, e.RequestID)
			}
			if !strings.Contains(full, secretDetail) {
				t.Errorf("%s: server-side log lost the cause: %q", key, full)
			}
		})
	}
	// The audit is only meaningful if the fault injection actually drove a
	// healthy slice of the surface into the 500 path.
	if fiveHundreds < 5 {
		t.Fatalf("only %d routes hit the 5xx path; the fault injection is not reaching the store", fiveHundreds)
	}
}

// TestSanitizationDrainMessageExempt pins the one deliberate exception:
// the unavailable (503) draining answer keeps its human-readable message —
// it carries no internals and failover logic keys on it.
func TestSanitizationDrainMessageExempt(t *testing.T) {
	f := newHTTPFixture(t)
	f.am.SetDraining(true)
	resp, err := http.Get(f.srv.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e core.APIError
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || e.Code != core.CodeUnavailable {
		t.Fatalf("draining readyz = %d %q, want 503 %q", resp.StatusCode, e.Code, core.CodeUnavailable)
	}
	if e.Message == webutil.SanitizedMessage || e.Message == "" {
		t.Fatalf("drain message was sanitized to %q; unavailable is exempt", e.Message)
	}
}

// TestSanitizationFunnelDirect exercises the funnel below the HTTP layer:
// a wrapped internal fault answered via webutil.Fail must come out as the
// sanitized 500 regardless of which handler raised it.
func TestSanitizationFunnelDirect(t *testing.T) {
	lookup := captureInternalLog(t)
	rec := httptest.NewRecorder()
	req, _ := http.NewRequest(http.MethodGet, "/x", nil)
	handler := webutil.RequestID(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		webutil.Fail(w, r, fmt.Errorf("am: op: %w: %w", core.ErrInternalFault, errors.New(secretDetail)))
	}))
	handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var e core.APIError
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.Message != webutil.SanitizedMessage {
		t.Fatalf("message = %q, want %q", e.Message, webutil.SanitizedMessage)
	}
	full, ok := lookup(e.RequestID)
	if !ok || !strings.Contains(full, secretDetail) {
		t.Fatalf("server-side capture = %q, %v; want the full cause", full, ok)
	}
}
