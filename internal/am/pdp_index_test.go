package am

import (
	"testing"

	"umac/internal/core"
	"umac/internal/policy"
)

// decideRead issues a token for alice and runs the decision path once.
func decideRead(t *testing.T, a *AM, pairingID string) (core.DecisionResponse, error) {
	t.Helper()
	tok, err := a.IssueToken(core.TokenRequest{
		Requester: "browser", Subject: "alice", Host: "webpics",
		Realm: "travel", Resource: "photo-1", Action: core.ActionRead,
	})
	if err != nil {
		// Deny at issue time: surface it as a non-permit to the caller.
		return core.DecisionResponse{Decision: core.DecisionDeny.String()}, nil
	}
	return a.Decide(pairingID, core.DecisionQuery{
		Host: "webpics", Realm: "travel", Resource: "photo-1",
		Action: core.ActionRead, Token: tok.Token,
	})
}

func indexSizes(a *AM) (gen, spec int) {
	a.index.mu.RLock()
	defer a.index.mu.RUnlock()
	return len(a.index.gen), len(a.index.spec)
}

func TestDecisionIndexFillsAndServes(t *testing.T) {
	a, _ := newTestAM(t)
	pairing := setupProtected(t, a)
	if a.index == nil {
		t.Fatal("decision index not enabled by default")
	}
	dec, err := decideRead(t, a, pairing.PairingID)
	if err != nil || !dec.Permit() {
		t.Fatalf("decision = %+v err=%v", dec, err)
	}
	gen, spec := indexSizes(a)
	if gen == 0 || spec == 0 {
		t.Fatalf("index not filled after decision: gen=%d spec=%d (negative specific entry expected)", gen, spec)
	}
}

func TestDecisionIndexInvalidatesOnPolicyUpdate(t *testing.T) {
	a, _ := newTestAM(t)
	pairing := setupProtected(t, a)
	if dec, err := decideRead(t, a, pairing.PairingID); err != nil || !dec.Permit() {
		t.Fatalf("pre-update decision = %+v err=%v", dec, err)
	}
	p, err := a.GetPolicy(mustLinkedGeneral(t, a, "bob", "travel"))
	if err != nil {
		t.Fatal(err)
	}
	p.Rules = []policy.Rule{{
		Effect:   policy.EffectDeny,
		Subjects: []policy.Subject{{Type: policy.SubjectEveryone}},
	}}
	if err := a.UpdatePolicy("bob", p); err != nil {
		t.Fatal(err)
	}
	// No TTL to wait out: the compiled entry must be recompiled right away.
	if dec, _ := decideRead(t, a, pairing.PairingID); dec.Permit() {
		t.Fatal("stale compiled policy served after update")
	}
}

func TestDecisionIndexInvalidatesOnUnlinkAndRelink(t *testing.T) {
	a, _ := newTestAM(t)
	pairing := setupProtected(t, a)
	pid := mustLinkedGeneral(t, a, "bob", "travel")
	if dec, _ := decideRead(t, a, pairing.PairingID); !dec.Permit() {
		t.Fatal("expected permit before unlink")
	}
	if err := a.UnlinkGeneral("bob", "travel"); err != nil {
		t.Fatal(err)
	}
	if dec, _ := decideRead(t, a, pairing.PairingID); dec.Permit() {
		t.Fatal("permit served from index after unlink")
	}
	if err := a.LinkGeneral("bob", "travel", pid); err != nil {
		t.Fatal(err)
	}
	if dec, _ := decideRead(t, a, pairing.PairingID); !dec.Permit() {
		t.Fatal("negative entry survived relink")
	}
}

func TestDecisionIndexInvalidatesOnPolicyRecreate(t *testing.T) {
	a, _ := newTestAM(t)
	pairing := setupProtected(t, a)
	pid := mustLinkedGeneral(t, a, "bob", "travel")
	if err := a.DeletePolicy("bob", pid); err != nil {
		t.Fatal(err)
	}
	// The link now dangles; the decision path caches the deny-biased miss.
	if dec, _ := decideRead(t, a, pairing.PairingID); dec.Permit() {
		t.Fatal("permit after policy delete")
	}
	// Re-creating the policy under the same ID resolves the dangling link
	// again; the cached negative entry must not outlive it.
	if _, err := a.CreatePolicy("bob", policy.Policy{
		ID: pid, Owner: "bob", Name: "friends-read", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectGroup, Name: "friends"}},
			Actions:  []core.Action{core.ActionRead, core.ActionList},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	if dec, _ := decideRead(t, a, pairing.PairingID); !dec.Permit() {
		t.Fatal("stale negative entry served after policy re-create")
	}
}

func TestDecisionIndexSpecificLinkInvalidation(t *testing.T) {
	a, _ := newTestAM(t)
	pairing := setupProtected(t, a)
	if dec, _ := decideRead(t, a, pairing.PairingID); !dec.Permit() {
		t.Fatal("expected general permit")
	}
	deny, err := a.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Name: "lockdown", Kind: policy.KindSpecific,
		Rules: []policy.Rule{{
			Effect:   policy.EffectDeny,
			Subjects: []policy.Subject{{Type: policy.SubjectEveryone}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.LinkSpecific("bob", "webpics", "photo-1", deny.ID); err != nil {
		t.Fatal(err)
	}
	if dec, _ := decideRead(t, a, pairing.PairingID); dec.Permit() {
		t.Fatal("cached negative specific entry overrode fresh deny link")
	}
	if err := a.UnlinkSpecific("bob", "webpics", "photo-1"); err != nil {
		t.Fatal(err)
	}
	if dec, _ := decideRead(t, a, pairing.PairingID); !dec.Permit() {
		t.Fatal("deny served from index after unlink")
	}
}

func TestDecisionIndexDisabledMatchesScanPath(t *testing.T) {
	a := New(Config{Name: "scanonly", BaseURL: "http://am.test", DisableDecisionIndex: true})
	if a.index != nil {
		t.Fatal("index allocated despite DisableDecisionIndex")
	}
	pairing := setupProtected(t, a)
	dec, err := decideRead(t, a, pairing.PairingID)
	if err != nil || !dec.Permit() {
		t.Fatalf("scan-path decision = %+v err=%v", dec, err)
	}
}

// mustLinkedGeneral resolves the policy currently linked as owner/realm's
// general policy.
func mustLinkedGeneral(t *testing.T, a *AM, owner core.UserID, realm core.RealmID) core.PolicyID {
	t.Helper()
	p := a.generalPolicyFor(owner, realm)
	if p == nil {
		t.Fatalf("no general policy linked for %s/%s", owner, realm)
	}
	return p.ID
}
