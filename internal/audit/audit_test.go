package audit

import (
	"sync"
	"testing"
	"time"

	"umac/internal/core"
)

func decision(owner core.UserID, host core.HostID, requester core.RequesterID, decision string) Event {
	return Event{
		Type:      EventDecision,
		Owner:     owner,
		Host:      host,
		Requester: requester,
		Decision:  decision,
		Action:    core.ActionRead,
	}
}

func TestAppendAssignsSeqAndTime(t *testing.T) {
	var l Log
	e1 := l.Append(Event{Type: EventPolicyCreated, Owner: "bob"})
	e2 := l.Append(Event{Type: EventPolicyUpdated, Owner: "bob"})
	if e1.Seq != 1 || e2.Seq != 2 {
		t.Fatalf("seq = %d, %d", e1.Seq, e2.Seq)
	}
	if e1.Time.IsZero() {
		t.Fatal("time not stamped")
	}
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
}

func TestAppendKeepsExplicitTime(t *testing.T) {
	var l Log
	ts := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	e := l.Append(Event{Type: EventDecision, Time: ts})
	if !e.Time.Equal(ts) {
		t.Fatalf("time overwritten: %v", e.Time)
	}
}

func TestQueryFilters(t *testing.T) {
	var l Log
	l.Append(decision("bob", "webpics", "browser", "permit"))
	l.Append(decision("bob", "webdocs", "gallery", "deny"))
	l.Append(decision("alice", "webpics", "browser", "permit"))
	l.Append(Event{Type: EventPolicyCreated, Owner: "bob"})

	if got := l.Query(Filter{Owner: "bob"}); len(got) != 3 {
		t.Fatalf("owner filter: %d", len(got))
	}
	if got := l.Query(Filter{Owner: "bob", Host: "webpics"}); len(got) != 1 {
		t.Fatalf("host filter: %d", len(got))
	}
	if got := l.Query(Filter{Type: EventDecision}); len(got) != 3 {
		t.Fatalf("type filter: %d", len(got))
	}
	if got := l.Query(Filter{Requester: "gallery"}); len(got) != 1 {
		t.Fatalf("requester filter: %d", len(got))
	}
	if got := l.Query(Filter{}); len(got) != 4 {
		t.Fatalf("empty filter: %d", len(got))
	}
}

func TestQueryTimeRange(t *testing.T) {
	var l Log
	base := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		l.Append(Event{Type: EventDecision, Owner: "bob", Time: base.Add(time.Duration(i) * time.Hour)})
	}
	got := l.Query(Filter{Since: base.Add(time.Hour), Until: base.Add(3 * time.Hour)})
	if len(got) != 3 {
		t.Fatalf("time range: %d, want 3", len(got))
	}
	// Realm filter combined with time.
	l.Append(Event{Type: EventDecision, Owner: "bob", Realm: "travel", Time: base})
	if got := l.Query(Filter{Realm: "travel"}); len(got) != 1 {
		t.Fatalf("realm filter: %d", len(got))
	}
}

func TestSummarize(t *testing.T) {
	var l Log
	l.Append(decision("bob", "webpics", "browser", "permit"))
	l.Append(decision("bob", "webpics", "gallery", "permit"))
	l.Append(decision("bob", "webdocs", "gallery", "deny"))
	l.Append(decision("bob", "webvideos", "browser", "permit"))
	l.Append(decision("alice", "webpics", "mallory-app", "deny"))
	l.Append(Event{Type: EventPolicyCreated, Owner: "bob", Host: "webpics"})

	s := l.Summarize("bob")
	if s.Events != 5 {
		t.Fatalf("events = %d", s.Events)
	}
	if s.PermitCount != 3 || s.DenyCount != 1 {
		t.Fatalf("permit/deny = %d/%d", s.PermitCount, s.DenyCount)
	}
	if len(s.Hosts) != 3 || s.Hosts[0] != "webdocs" || s.Hosts[1] != "webpics" || s.Hosts[2] != "webvideos" {
		t.Fatalf("hosts = %v", s.Hosts)
	}
	if s.DecisionsByHost["webpics"] != 2 {
		t.Fatalf("webpics decisions = %d", s.DecisionsByHost["webpics"])
	}
	if s.RequesterCount != 2 {
		t.Fatalf("requesters = %d", s.RequesterCount)
	}
	// Alice's summary is disjoint.
	sa := l.Summarize("alice")
	if sa.Events != 1 || sa.DenyCount != 1 || sa.PermitCount != 0 {
		t.Fatalf("alice summary = %+v", sa)
	}
}

func TestSummarizeEmptyOwner(t *testing.T) {
	var l Log
	s := l.Summarize("ghost")
	if s.Events != 0 || len(s.Hosts) != 0 || s.RequesterCount != 0 {
		t.Fatalf("non-empty summary for unknown owner: %+v", s)
	}
}

func TestConcurrentAppendQuery(t *testing.T) {
	var l Log
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				l.Append(decision("bob", "webpics", "browser", "permit"))
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l.Query(Filter{Owner: "bob"})
				l.Summarize("bob")
			}
		}()
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Fatalf("len = %d", l.Len())
	}
	// Sequence numbers are unique and dense.
	events := l.Query(Filter{})
	seen := make(map[int64]bool, len(events))
	for _, e := range events {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}
