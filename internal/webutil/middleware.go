package webutil

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"umac/internal/core"
)

// This file is the shared HTTP middleware stack of the versioned API:
// request-ID injection, panic recovery, and per-route latency/status
// counters. The AM mounts all three around every route; Hosts may reuse
// them for their own surfaces.

// RequestIDHeader carries the request ID on both requests and responses.
// An inbound value is honoured (so callers and proxies can correlate);
// otherwise one is generated.
const RequestIDHeader = "X-Request-Id"

// maxRequestIDLen bounds an inbound request ID; longer (or non-printable)
// values are replaced with a generated one.
const maxRequestIDLen = 64

type ctxKey int

const requestIDKey ctxKey = iota

// RequestID injects a request ID into the context and response header.
func RequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if !validRequestID(id) {
			id = core.NewID("req")
		}
		w.Header().Set(RequestIDHeader, id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey, id)))
	})
}

func validRequestID(id string) bool {
	if id == "" || len(id) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' {
			return false
		}
	}
	return true
}

// RequestIDFrom returns the request ID injected by RequestID ("" if none).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// Recover converts handler panics into a structured 500 (code "internal",
// retryable) instead of a severed connection. http.ErrAbortHandler keeps
// its net/http meaning and is re-raised.
func Recover(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			// If the handler already wrote headers this is a best-effort
			// trailer write that net/http discards; nothing better exists.
			WriteAPIError(w, r, core.NewAPIError(core.CodeInternal, "internal error"))
		}()
		next.ServeHTTP(w, r)
	})
}

// Metrics aggregates per-route request counters: hit count, status
// classes, cumulative and maximum latency. Route labels are fixed at
// Instrument time, so the hot path touches only atomics — no map lookups,
// no locks.
type Metrics struct {
	start time.Time

	mu     sync.Mutex
	routes []*routeCounters
}

// routeCounters is one route's live counter set.
type routeCounters struct {
	route       string
	count       atomic.Int64
	status      [6]atomic.Int64 // index status/100: [2]=2xx … [5]=5xx
	totalMicros atomic.Int64
	maxMicros   atomic.Int64
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now()}
}

// Instrument wraps h, accounting its requests under the given route label.
// Aliased paths instrumented with the same call share one counter set.
func (m *Metrics) Instrument(route string, h http.Handler) http.Handler {
	rc := &routeCounters{route: route}
	m.mu.Lock()
	m.routes = append(m.routes, rc)
	m.mu.Unlock()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		begin := time.Now()
		// Record in a defer so a panicking handler is still counted: the
		// Recover middleware sits outside this wrapper and will turn the
		// panic into a 500, so account it as 5xx here before re-raising.
		defer func() {
			status := sw.status()
			if rec := recover(); rec != nil {
				status = http.StatusInternalServerError
				defer panic(rec)
			}
			micros := time.Since(begin).Microseconds()
			rc.count.Add(1)
			rc.totalMicros.Add(micros)
			for {
				prev := rc.maxMicros.Load()
				if micros <= prev || rc.maxMicros.CompareAndSwap(prev, micros) {
					break
				}
			}
			if cls := status / 100; cls >= 2 && cls <= 5 {
				rc.status[cls].Add(1)
			}
		}()
		h.ServeHTTP(sw, r)
	})
}

// statusWriter records the status code a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush implements http.Flusher when the underlying writer does, so
// streaming handlers (SSE on /v1/events) can push frames through the
// metrics wrapper without buffering until the request ends.
func (w *statusWriter) Flush() {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// status returns the recorded status (200 when the handler wrote a bare
// body or nothing at all — net/http's implicit default).
func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// RouteSnapshot is one route's counters at snapshot time.
type RouteSnapshot struct {
	Count       int64            `json:"count"`
	Status      map[string]int64 `json:"status"`
	TotalMillis float64          `json:"total_ms"`
	MaxMillis   float64          `json:"max_ms"`
}

// MetricsSnapshot is the GET /v1/metrics response body (minus AM identity).
type MetricsSnapshot struct {
	UptimeSeconds float64                  `json:"uptime_seconds"`
	Requests      int64                    `json:"requests"`
	Routes        map[string]RouteSnapshot `json:"routes"`
}

// Snapshot renders the current counters. Routes never hit are omitted.
func (m *Metrics) Snapshot() MetricsSnapshot {
	m.mu.Lock()
	routes := make([]*routeCounters, len(m.routes))
	copy(routes, m.routes)
	m.mu.Unlock()
	snap := MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Routes:        make(map[string]RouteSnapshot, len(routes)),
	}
	classes := [...]string{2: "2xx", 3: "3xx", 4: "4xx", 5: "5xx"}
	for _, rc := range routes {
		n := rc.count.Load()
		if n == 0 {
			continue
		}
		rs := RouteSnapshot{
			Count:       n,
			Status:      make(map[string]int64, 4),
			TotalMillis: float64(rc.totalMicros.Load()) / 1e3,
			MaxMillis:   float64(rc.maxMicros.Load()) / 1e3,
		}
		for cls := 2; cls <= 5; cls++ {
			if c := rc.status[cls].Load(); c > 0 {
				rs.Status[classes[cls]] = c
			}
		}
		snap.Requests += n
		snap.Routes[rc.route] = rs
	}
	return snap
}
