package loadgen

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"umac/internal/core"
)

// These are the harness's own unit tests — no spawned binaries, so they
// run even under -short.

func TestZipfSkewAndDeterminism(t *testing.T) {
	owners := []core.UserID{"hot", "warm", "cool", "cold", "frozen"}
	const n = 5000
	counts := Counts(owners, 42, 1.3, n)
	if counts["hot"] <= n/3 {
		t.Fatalf("rank-0 owner drew only %d of %d picks; distribution is not hot", counts["hot"], n)
	}
	if counts["hot"] <= counts["frozen"] {
		t.Fatalf("head (%d) not hotter than tail (%d)", counts["hot"], counts["frozen"])
	}
	if again := Counts(owners, 42, 1.3, n); again["hot"] != counts["hot"] {
		t.Fatalf("same seed produced a different sequence: %d != %d", again["hot"], counts["hot"])
	}
	if other := Counts(owners, 7, 1.3, n); other["hot"] == counts["hot"] && other["warm"] == counts["warm"] {
		t.Fatal("different seeds produced an identical tally; seeding is not wired through")
	}
}

func TestRecorderRecords(t *testing.T) {
	rec := &Recorder{Scenario: "unit"}
	ph := rec.Phase("ops")
	for i := 0; i < 10; i++ {
		ph.Op(func() error {
			time.Sleep(time.Millisecond)
			return nil
		})
	}
	ph.Op(func() error { return errors.New("boom") })
	ph.End()

	recs := rec.Records()
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Name != "Loadgen/unit/ops" {
		t.Fatalf("record name %q", r.Name)
	}
	if r.N != 11 || r.Errors != 1 {
		t.Fatalf("n=%d errors=%d, want 11/1", r.N, r.Errors)
	}
	if r.P50Ns <= 0 || r.P50Ns > r.P99Ns {
		t.Fatalf("quantiles out of order: p50=%d p99=%d", r.P50Ns, r.P99Ns)
	}
	if r.OpsPerSec <= 0 {
		t.Fatalf("ops/sec %f", r.OpsPerSec)
	}
}

func TestRecordsRoundTripAndVerify(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	recs := []Record{
		{Name: "Loadgen/unit/b", N: 5, NsPerOp: 100, P50Ns: 90, P99Ns: 200, OpsPerSec: 10},
		{Name: "Loadgen/unit/a", N: 3, NsPerOp: 50, P50Ns: 40, P99Ns: 80, OpsPerSec: 20},
	}
	if err := WriteRecords(path, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "Loadgen/unit/a" {
		t.Fatalf("round trip lost sorting or records: %+v", got)
	}

	if err := VerifyRecords(got, got); err != nil {
		t.Fatalf("self-verify failed: %v", err)
	}
	if err := VerifyRecords(got[:1], got); err == nil {
		t.Fatal("verify accepted a fresh run missing a baseline record")
	}
	lossy := []Record{{Name: "Loadgen/unit/a", N: 3, P50Ns: 1, P99Ns: 2, Lost: 1}}
	if err := VerifyRecords(lossy, got[:1]); err == nil {
		t.Fatal("verify accepted a record reporting lost writes")
	}
}

func TestFaultProxyLatencyAndPartition(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer backend.Close()
	fp, err := NewFaultProxy(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer fp.Close()
	client := &http.Client{Timeout: 5 * time.Second}

	get := func() (string, time.Duration, error) {
		t0 := time.Now()
		resp, err := client.Get(fp.URL())
		if err != nil {
			return "", time.Since(t0), err
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body), time.Since(t0), nil
	}

	if body, _, err := get(); err != nil || body != "ok" {
		t.Fatalf("clean path: body=%q err=%v", body, err)
	}

	fp.SetLatency(60 * time.Millisecond)
	if _, d, err := get(); err != nil || d < 60*time.Millisecond {
		t.Fatalf("latency shim: took %s err=%v, want >=60ms", d, err)
	}
	fp.SetLatency(0)

	fp.SetPartitioned(true)
	if _, _, err := get(); err == nil {
		t.Fatal("partitioned path served a response")
	}
	fp.SetPartitioned(false)
	if body, _, err := get(); err != nil || body != "ok" {
		t.Fatalf("healed path: body=%q err=%v", body, err)
	}
}
