package loadgen

import (
	"math/rand"
	"sync"

	"umac/internal/core"
)

// OwnerPicker draws owners from a seeded Zipf distribution: rank-0 owners
// soak up most of the traffic, the tail barely any — the hot-owner shape
// real multi-tenant AM deployments see (a few popular resource owners, a
// long tail of quiet ones). The same seed always yields the same pick
// sequence, so scenario runs are reproducible.
type OwnerPicker struct {
	mu     sync.Mutex
	zipf   *rand.Zipf
	owners []core.UserID
}

// NewOwnerPicker builds a picker over owners with Zipf exponent s (must
// be >1; larger = hotter head). The owners slice order defines the
// popularity ranking: owners[0] is the hottest.
func NewOwnerPicker(owners []core.UserID, seed int64, s float64) *OwnerPicker {
	if len(owners) == 0 {
		panic("loadgen: OwnerPicker needs at least one owner")
	}
	r := rand.New(rand.NewSource(seed))
	return &OwnerPicker{
		zipf:   rand.NewZipf(r, s, 1, uint64(len(owners)-1)),
		owners: owners,
	}
}

// Pick draws the next owner. Safe for concurrent use.
func (p *OwnerPicker) Pick() core.UserID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.owners[p.zipf.Uint64()]
}

// Counts tallies n picks without consuming the live sequence — a fresh
// picker with the same parameters — so tests can assert the distribution
// really is skewed before trusting the scenario's "hot owner" label.
func Counts(owners []core.UserID, seed int64, s float64, n int) map[core.UserID]int {
	p := NewOwnerPicker(owners, seed, s)
	counts := make(map[core.UserID]int, len(owners))
	for i := 0; i < n; i++ {
		counts[p.Pick()]++
	}
	return counts
}
