// Package core defines the shared vocabulary of the user-managed access
// control (UMAC) protocol: actions, decisions, protocol phases, entity
// identifiers and the wire messages exchanged between the Authorization
// Manager (AM), Hosts and Requesters.
//
// The definitions follow Section V of Machulak & van Moorsel,
// "Architecture and Protocol for User-Controlled Access Management in
// Web 2.0 Applications" (CS-TR-1191, ICDCS 2010).
package core

import (
	"fmt"
	"strings"
)

// Action is an operation a Requester may perform on a resource.
// The paper's prototype distinguishes at least "read" and "write"
// (Section VI); the storage and gallery Hosts additionally need list and
// delete semantics.
type Action string

// Canonical actions understood by the policy engine and the prototype Hosts.
const (
	ActionRead   Action = "read"
	ActionWrite  Action = "write"
	ActionDelete Action = "delete"
	ActionList   Action = "list"
	ActionShare  Action = "share"
)

// ValidAction reports whether a is one of the canonical actions.
func ValidAction(a Action) bool {
	switch a {
	case ActionRead, ActionWrite, ActionDelete, ActionList, ActionShare:
		return true
	}
	return false
}

// Decision is the outcome of evaluating an access request against the
// applicable policies. The paper's engine produces exactly "permit" or
// "deny" (Section VI).
type Decision int

// Decision values. DecisionUnknown is the zero value and is never a valid
// final outcome; it marks "no applicable policy" inside the engine, which
// the deny-biased AM maps to DecisionDeny.
const (
	DecisionUnknown Decision = iota
	DecisionPermit
	DecisionDeny
)

// String implements fmt.Stringer using the paper's lowercase terminology.
func (d Decision) String() string {
	switch d {
	case DecisionPermit:
		return "permit"
	case DecisionDeny:
		return "deny"
	default:
		return "unknown"
	}
}

// ParseDecision converts the wire form ("permit"/"deny") back to a Decision.
func ParseDecision(s string) (Decision, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "permit":
		return DecisionPermit, nil
	case "deny":
		return DecisionDeny, nil
	default:
		return DecisionUnknown, fmt.Errorf("core: unknown decision %q", s)
	}
}

// Phase identifies a step of the access-control protocol (Fig. 2).
type Phase int

// Protocol phases, numbered exactly as in Fig. 2 of the paper.
const (
	PhaseDelegatingAccessControl Phase = iota + 1 // (1) Fig. 3
	PhaseComposingPolicies                        // (2) Fig. 4
	PhaseObtainingToken                           // (3) Fig. 5
	PhaseAccessingResource                        // (4) Fig. 6
	PhaseObtainingDecision                        // (5) Fig. 6
	PhaseSubsequentAccess                         // (6) Section V.B.6
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseDelegatingAccessControl:
		return "delegating-access-control"
	case PhaseComposingPolicies:
		return "composing-policies"
	case PhaseObtainingToken:
		return "obtaining-authorization-token"
	case PhaseAccessingResource:
		return "accessing-protected-resource"
	case PhaseObtainingDecision:
		return "obtaining-authorization-decision"
	case PhaseSubsequentAccess:
		return "subsequent-access-requests"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// UserID identifies a User (the resource owner, or a subject requesting
// access on behalf of a person) across all components.
type UserID string

// HostID identifies a Host application registered with an AM.
type HostID string

// RequesterID identifies a Requester application or browser agent.
type RequesterID string

// PolicyID identifies an access-control policy stored at an AM.
type PolicyID string

// RealmID identifies a group of resources protected as a unit. The paper
// uses "realm" for the scope an authorization token refers to ("a particular
// resource or a group of resources (realm)", Section V.B.3).
type RealmID string

// ResourceID identifies a single resource within a Host.
type ResourceID string

// ResourceRef names a resource globally: the Host that stores it and its
// Host-local identifier, plus the realm it belongs to (if any).
type ResourceRef struct {
	Host     HostID     `json:"host"`
	Resource ResourceID `json:"resource"`
	Realm    RealmID    `json:"realm,omitempty"`
}

// String renders the reference as host/resource.
func (r ResourceRef) String() string {
	return string(r.Host) + "/" + string(r.Resource)
}

// Valid reports whether both mandatory fields are set.
func (r ResourceRef) Valid() bool {
	return r.Host != "" && r.Resource != ""
}
