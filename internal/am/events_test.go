package am

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"umac/internal/core"
	"umac/internal/httpsig"
	"umac/internal/identity"
	"umac/internal/policy"
)

// These tests drive the GET /v1/events SSE family end to end over real
// HTTP connections: authentication per audience, filter scoping,
// Last-Event-ID resume with no loss and no duplication, gap→resync when
// the replay window rolled past the cursor, heartbeats, and the
// /v1/metrics gauges.

const eventsTestSecret = "events-test-secret"

// newEventsFixture is newHTTPFixture with a tunable Config (events sizing,
// replication secret for the operator bearer).
func newEventsFixture(t *testing.T, cfg Config) *httpFixture {
	t.Helper()
	if cfg.Name == "" {
		cfg.Name = "am"
	}
	if cfg.Notifier == nil {
		cfg.Notifier = &Outbox{}
	}
	a := New(cfg)
	srv := httptest.NewServer(a.Handler())
	t.Cleanup(srv.Close)
	a.SetBaseURL(srv.URL)
	return &httpFixture{am: a, srv: srv}
}

// sseConn is one open SSE subscription with a parse helper.
type sseConn struct {
	resp   *http.Response
	br     *bufio.Reader
	cancel context.CancelFunc
}

// openSSE connects to an event endpoint and consumes the opening comment
// frame, so the subscription is guaranteed registered before the caller
// publishes. The connection self-destructs after 15s so a missing event
// fails the test instead of hanging it.
func openSSE(t *testing.T, url string, hdr http.Header) *sseConn {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header[k] = v
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		cancel()
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	c := &sseConn{resp: resp, br: bufio.NewReader(resp.Body), cancel: cancel}
	t.Cleanup(c.close)
	if _, _, _, comment := c.readFrame(t); !comment {
		t.Fatal("first frame is not the opening comment")
	}
	return c
}

func (c *sseConn) close() {
	c.cancel()
	c.resp.Body.Close()
}

// readFrame reads one SSE frame (event or comment) up to its blank line.
func (c *sseConn) readFrame(t *testing.T) (id, event, data string, comment bool) {
	t.Helper()
	var sawAny bool
	for {
		line, err := c.br.ReadString('\n')
		if err != nil {
			t.Fatalf("sse read: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		if line == "" {
			if sawAny {
				return
			}
			continue
		}
		sawAny = true
		switch {
		case strings.HasPrefix(line, ":"):
			comment = true
		case strings.HasPrefix(line, "id: "):
			id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
}

// nextEvent reads frames until the next real event, skipping heartbeats,
// and checks the frame's event name matches the payload type.
func (c *sseConn) nextEvent(t *testing.T) core.Event {
	t.Helper()
	for {
		_, event, data, comment := c.readFrame(t)
		if comment {
			continue
		}
		var e core.Event
		if err := json.Unmarshal([]byte(data), &e); err != nil {
			t.Fatalf("decode event %q: %v", data, err)
		}
		if string(e.Type) != event {
			t.Fatalf("frame event %q disagrees with payload type %q", event, e.Type)
		}
		return e
	}
}

func TestEventsAuthAndValidation(t *testing.T) {
	f := newHTTPFixture(t)
	cases := []struct {
		name, path, user string
		want             int
	}{
		{"unauthenticated", "/v1/events", "", 401},
		{"unknown type", "/v1/events?types=bogus", "bob", 400},
		{"bad cursor", "/v1/events?last_event_id=nope", "bob", 400},
		{"negative cursor", "/v1/events?last_event_id=-4", "bob", 400},
		{"foreign owner", "/v1/events?owner=carol", "bob", 403},
		{"consent without ticket", "/v1/events/consent", "", 400},
		{"invalidation unsigned", "/v1/events/invalidation", "", 401},
	}
	for _, tc := range cases {
		req, _ := http.NewRequest(http.MethodGet, f.srv.URL+tc.path, nil)
		if tc.user != "" {
			req.Header.Set(identity.DefaultUserHeader, tc.user)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

// TestEventsOwnerScoping: a session subscriber sees their own events plus
// node-wide signals, never another owner's.
func TestEventsOwnerScoping(t *testing.T) {
	f := newHTTPFixture(t)
	hdr := http.Header{}
	hdr.Set(identity.DefaultUserHeader, "bob")
	c := openSSE(t, f.srv.URL+"/v1/events", hdr)

	broker := f.am.Events()
	broker.Publish(core.Event{Type: core.EventInvalidation, Owner: "carol",
		Invalidation: &core.InvalidationPush{Owner: "carol"}})
	broker.Publish(core.Event{Type: core.EventInvalidation, Owner: "bob",
		Invalidation: &core.InvalidationPush{Owner: "bob", Realms: []core.RealmID{"travel"}}})
	broker.Publish(core.Event{Type: core.EventReplication, Signal: core.SignalPromoted})

	e := c.nextEvent(t)
	if e.Type != core.EventInvalidation || e.Owner != "bob" {
		t.Fatalf("first event = %+v, want bob's invalidation", e)
	}
	if e.Invalidation == nil || len(e.Invalidation.Realms) != 1 {
		t.Fatalf("payload = %+v", e.Invalidation)
	}
	e = c.nextEvent(t)
	if e.Type != core.EventReplication || e.Signal != core.SignalPromoted {
		t.Fatalf("second event = %+v, want node-wide replication signal", e)
	}
}

// TestEventsReplBearerUnfiltered: the replication secret grants the
// node-wide operator stream across all owners.
func TestEventsReplBearerUnfiltered(t *testing.T) {
	f := newEventsFixture(t, Config{
		Replication: ReplicationConfig{Role: RolePrimary, Secret: eventsTestSecret},
	})
	hdr := http.Header{}
	hdr.Set("Authorization", "Bearer "+eventsTestSecret)
	c := openSSE(t, f.am.BaseURL()+"/v1/events", hdr)

	f.am.Events().Publish(core.Event{Type: core.EventInvalidation, Owner: "carol",
		Invalidation: &core.InvalidationPush{Owner: "carol"}})
	if e := c.nextEvent(t); e.Owner != "carol" {
		t.Fatalf("event = %+v", e)
	}

	// A wrong bearer is not a session either: 401.
	req, _ := http.NewRequest(http.MethodGet, f.am.BaseURL()+"/v1/events", nil)
	req.Header.Set("Authorization", "Bearer nope")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 401 {
		t.Fatalf("wrong bearer status = %d", resp.StatusCode)
	}
}

// TestEventsConsentStreamEndToEnd proves the consent producer: a pending
// ticket's resolution arrives on /v1/events/consent with the minted token,
// without the requester ever polling.
func TestEventsConsentStreamEndToEnd(t *testing.T) {
	f := newHTTPFixture(t)
	code, _ := f.am.ApprovePairing(core.PairingRequest{Host: "webpics", User: "bob"})
	pr, _ := f.am.ExchangeCode(code, "webpics")
	if _, err := f.am.RegisterRealm(pr.PairingID, core.ProtectRequest{Realm: "private"}); err != nil {
		t.Fatal(err)
	}
	p, _ := f.am.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:     policy.EffectPermit,
			Subjects:   []policy.Subject{{Type: policy.SubjectEveryone}},
			Conditions: []policy.Condition{{Type: policy.CondRequireConsent}},
		}},
	})
	if err := f.am.LinkGeneral("bob", "private", p.ID); err != nil {
		t.Fatal(err)
	}
	resp := f.do(t, "", http.MethodPost, "/token", core.TokenRequest{
		Requester: "editor", Subject: "evelyn", Host: "webpics",
		Realm: "private", Resource: "diary", Action: core.ActionRead,
	})
	tr := decodeBody[core.TokenResponse](t, resp)
	if tr.PendingConsent == "" {
		t.Fatalf("resp = %+v", tr)
	}

	c := openSSE(t, f.srv.URL+"/v1/events/consent?ticket="+tr.PendingConsent, nil)
	// Another ticket's resolution must not leak into this stream: publish a
	// decoy first.
	f.am.Events().Publish(core.Event{Type: core.EventConsent, Owner: "bob", Ticket: "other",
		Consent: &core.ConsentStatus{Ticket: "other", Resolved: true}})
	f.do(t, "bob", http.MethodPost, "/consents/"+tr.PendingConsent, map[string]bool{"approve": true}).Body.Close()

	e := c.nextEvent(t)
	if e.Type != core.EventConsent || e.Ticket != tr.PendingConsent {
		t.Fatalf("event = %+v", e)
	}
	st := e.Consent
	if st == nil || !st.Resolved || !st.Approved || st.Token == "" {
		t.Fatalf("consent payload = %+v", st)
	}
}

// TestEventsInvalidationSignedStream proves the invalidation producer over
// the pairing-signed endpoint: a policy write reaches the subscribed Host
// as a scoped invalidation event.
func TestEventsInvalidationSignedStream(t *testing.T) {
	f := newHTTPFixture(t)
	code, _ := f.am.ApprovePairing(core.PairingRequest{Host: "webpics", User: "bob"})
	pr, err := f.am.ExchangeCode(code, "webpics")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.am.RegisterRealm(pr.PairingID, core.ProtectRequest{Realm: "travel"}); err != nil {
		t.Fatal(err)
	}
	p, err := f.am.CreatePolicy("bob", simplePolicy("bob"))
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodGet, f.srv.URL+"/v1/events/invalidation", nil)
	if err := httpsig.Sign(req, pr.PairingID, pr.Secret); err != nil {
		t.Fatal(err)
	}
	c := openSSE(t, f.srv.URL+"/v1/events/invalidation", req.Header)

	// Linking the policy to the realm is a PAP mutation: it must reach the
	// subscribed Host as a realm-scoped invalidation.
	if err := f.am.LinkGeneral("bob", "travel", p.ID); err != nil {
		t.Fatal(err)
	}
	e := c.nextEvent(t)
	if e.Type != core.EventInvalidation || e.Owner != "bob" || e.Invalidation == nil {
		t.Fatalf("event = %+v", e)
	}
	if len(e.Invalidation.Realms) != 1 || e.Invalidation.Realms[0] != "travel" {
		t.Fatalf("push scope = %+v", e.Invalidation)
	}
}

// TestEventsResumeNoLossNoDup is the reconnect contract: events published
// while the subscriber was away replay exactly once from Last-Event-ID.
func TestEventsResumeNoLossNoDup(t *testing.T) {
	f := newEventsFixture(t, Config{
		Replication: ReplicationConfig{Role: RolePrimary, Secret: eventsTestSecret},
	})
	hdr := http.Header{}
	hdr.Set("Authorization", "Bearer "+eventsTestSecret)
	broker := f.am.Events()

	c := openSSE(t, f.am.BaseURL()+"/v1/events", hdr)
	for _, r := range []string{"a", "b"} {
		broker.Publish(core.Event{Type: core.EventInvalidation, Owner: "bob",
			Invalidation: &core.InvalidationPush{Owner: "bob", Realms: []core.RealmID{core.RealmID(r)}}})
	}
	var cursor int64
	for _, want := range []string{"a", "b"} {
		e := c.nextEvent(t)
		if e.Invalidation.Realms[0] != core.RealmID(want) {
			t.Fatalf("got %+v, want realm %s", e, want)
		}
		cursor = e.Seq
	}
	// Kill the connection mid-stream, then publish while nobody listens.
	c.close()
	for _, r := range []string{"c", "d", "e"} {
		broker.Publish(core.Event{Type: core.EventInvalidation, Owner: "bob",
			Invalidation: &core.InvalidationPush{Owner: "bob", Realms: []core.RealmID{core.RealmID(r)}}})
	}
	// Reconnect with Last-Event-ID: the missed events replay in order,
	// nothing duplicated, nothing resynced.
	hdr.Set("Last-Event-ID", "2")
	if cursor != 2 {
		t.Fatalf("cursor = %d, want 2", cursor)
	}
	c2 := openSSE(t, f.am.BaseURL()+"/v1/events", hdr)
	for _, want := range []string{"c", "d", "e"} {
		e := c2.nextEvent(t)
		if e.Type == core.EventResync {
			t.Fatalf("unexpected resync: %+v", e)
		}
		if got := e.Invalidation.Realms[0]; got != core.RealmID(want) {
			t.Fatalf("replayed realm = %s, want %s", got, want)
		}
	}
	// And the stream stays live past the replay.
	broker.Publish(core.Event{Type: core.EventInvalidation, Owner: "bob",
		Invalidation: &core.InvalidationPush{Owner: "bob", Realms: []core.RealmID{"f"}}})
	if e := c2.nextEvent(t); e.Invalidation.Realms[0] != "f" {
		t.Fatalf("live event = %+v", e)
	}
}

// TestEventsResumePastWindowResync: a cursor older than the replay window
// yields an explicit resync frame carrying the stream head, never a silent
// hole.
func TestEventsResumePastWindowResync(t *testing.T) {
	f := newEventsFixture(t, Config{
		Events:      EventsConfig{ReplayWindow: 4},
		Replication: ReplicationConfig{Role: RolePrimary, Secret: eventsTestSecret},
	})
	broker := f.am.Events()
	for i := 0; i < 10; i++ {
		broker.Publish(core.Event{Type: core.EventReplication, Signal: core.SignalLag})
	}
	hdr := http.Header{}
	hdr.Set("Authorization", "Bearer "+eventsTestSecret)
	hdr.Set("Last-Event-ID", "1")
	c := openSSE(t, f.am.BaseURL()+"/v1/events", hdr)
	e := c.nextEvent(t)
	if e.Type != core.EventResync {
		t.Fatalf("first frame = %+v, want resync", e)
	}
	if e.Seq != broker.LastSeq() {
		t.Fatalf("resync seq = %d, want head %d", e.Seq, broker.LastSeq())
	}
	// The stream skips straight to live after the marker (replaying the
	// retained tail would hide the hole): the next publish arrives.
	broker.Publish(core.Event{Type: core.EventReplication, Signal: core.SignalConnected})
	live := c.nextEvent(t)
	if live.Type != core.EventReplication || live.Signal != core.SignalConnected {
		t.Fatalf("live event = %+v", live)
	}
}

// TestEventsHeartbeat: an idle stream stays warm with comment frames.
func TestEventsHeartbeat(t *testing.T) {
	f := newEventsFixture(t, Config{
		Events:      EventsConfig{Heartbeat: 30 * time.Millisecond},
		Replication: ReplicationConfig{Role: RolePrimary, Secret: eventsTestSecret},
	})
	hdr := http.Header{}
	hdr.Set("Authorization", "Bearer "+eventsTestSecret)
	c := openSSE(t, f.am.BaseURL()+"/v1/events", hdr)
	if _, _, _, comment := c.readFrame(t); !comment {
		t.Fatal("expected a heartbeat comment on an idle stream")
	}
}

// TestEventsMetricsGauges: the event plane reports through /v1/metrics.
func TestEventsMetricsGauges(t *testing.T) {
	f := newHTTPFixture(t)
	hdr := http.Header{}
	hdr.Set(identity.DefaultUserHeader, "bob")
	openSSE(t, f.srv.URL+"/v1/events", hdr)

	f.am.Events().Publish(core.Event{Type: core.EventInvalidation, Owner: "bob",
		Invalidation: &core.InvalidationPush{Owner: "bob"}})

	resp := f.do(t, "", http.MethodGet, "/v1/metrics", nil)
	body := decodeBody[struct {
		Events *core.EventsHealth `json:"events"`
	}](t, resp)
	if body.Events == nil {
		t.Fatal("metrics missing events section")
	}
	if body.Events.Published < 1 || body.Events.LastSeq < 1 {
		t.Fatalf("events health = %+v", body.Events)
	}
	total := 0
	for _, n := range body.Events.Subscribers {
		total += n
	}
	if total < 1 {
		t.Fatalf("subscribers = %+v", body.Events.Subscribers)
	}
}
