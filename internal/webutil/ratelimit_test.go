package webutil

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced Clock for deterministic limiter tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestRateLimitBurstThenDeny(t *testing.T) {
	clk := newFakeClock()
	l := NewRateLimiter(clk.Now, TierConfig{Name: "t", Rate: 1, Burst: 10})
	for i := 0; i < 10; i++ {
		if ok, _ := l.Allow("t", "alice", 1); !ok {
			t.Fatalf("burst request %d denied; want the full burst of 10 admitted", i)
		}
	}
	ok, retry := l.Allow("t", "alice", 1)
	if ok {
		t.Fatal("11th request admitted; bucket should be empty")
	}
	if retry != time.Second {
		t.Fatalf("retryAfter = %v, want 1s (deficit 1 token at 1 token/s)", retry)
	}
}

func TestRateLimitRefill(t *testing.T) {
	clk := newFakeClock()
	l := NewRateLimiter(clk.Now, TierConfig{Name: "t", Rate: 2, Burst: 4})
	for i := 0; i < 4; i++ {
		if ok, _ := l.Allow("t", "k", 1); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	if ok, _ := l.Allow("t", "k", 1); ok {
		t.Fatal("request admitted on an empty bucket with a frozen clock")
	}
	clk.Advance(500 * time.Millisecond) // 2/s * 0.5s = 1 token
	if ok, _ := l.Allow("t", "k", 1); !ok {
		t.Fatal("request denied after exactly one token refilled")
	}
	if ok, _ := l.Allow("t", "k", 1); ok {
		t.Fatal("second request admitted; only one token had refilled")
	}
	// Refill is capped at Burst: a long quiet period does not bank credit.
	clk.Advance(time.Hour)
	for i := 0; i < 4; i++ {
		if ok, _ := l.Allow("t", "k", 1); !ok {
			t.Fatalf("post-idle request %d denied; want Burst=4 admitted", i)
		}
	}
	if ok, _ := l.Allow("t", "k", 1); ok {
		t.Fatal("5th post-idle request admitted; refill must cap at Burst")
	}
}

func TestRateLimitExactBoundary(t *testing.T) {
	clk := newFakeClock()
	l := NewRateLimiter(clk.Now, TierConfig{Name: "t", Rate: 1, Burst: 5})
	// tokens == cost exactly must admit.
	if ok, _ := l.Allow("t", "k", 5); !ok {
		t.Fatal("cost == full burst denied; an exact match must admit")
	}
	if ok, _ := l.Allow("t", "k", 1); ok {
		t.Fatal("request admitted on a zeroed bucket")
	}
	clk.Advance(time.Second) // refill exactly 1.0 tokens
	if ok, _ := l.Allow("t", "k", 1); !ok {
		t.Fatal("cost == exactly refilled tokens denied")
	}
}

func TestRateLimitRetryAfterScalesWithDeficit(t *testing.T) {
	clk := newFakeClock()
	l := NewRateLimiter(clk.Now, TierConfig{Name: "t", Rate: 2, Burst: 1})
	if ok, _ := l.Allow("t", "k", 1); !ok {
		t.Fatal("first request denied")
	}
	_, retry := l.Allow("t", "k", 10)
	if want := 5 * time.Second; retry != want { // deficit 10 tokens at 2/s
		t.Fatalf("retryAfter = %v, want %v", retry, want)
	}
}

func TestRateLimitKeyIsolation(t *testing.T) {
	clk := newFakeClock()
	l := NewRateLimiter(clk.Now,
		TierConfig{Name: "a", Rate: 1, Burst: 2},
		TierConfig{Name: "b", Rate: 1, Burst: 2},
	)
	// Exhaust tenant "noisy" in tier "a".
	l.Allow("a", "noisy", 2)
	if ok, _ := l.Allow("a", "noisy", 1); ok {
		t.Fatal("noisy tenant not exhausted")
	}
	// A different key in the same tier is untouched.
	if ok, _ := l.Allow("a", "quiet", 1); !ok {
		t.Fatal("quiet tenant throttled by noisy tenant's spend (key bleed)")
	}
	// The same key in a different tier is untouched.
	if ok, _ := l.Allow("b", "noisy", 1); !ok {
		t.Fatal("tier b throttled by tier a's spend (tier bleed)")
	}
}

func TestRateLimitUnconfiguredTierAdmits(t *testing.T) {
	l := NewRateLimiter(nil, TierConfig{Name: "t", Rate: 1})
	if ok, _ := l.Allow("other", "k", 1e9); !ok {
		t.Fatal("unconfigured tier denied; it must always admit")
	}
	// A tier configured with Rate <= 0 is skipped, i.e. unlimited.
	l2 := NewRateLimiter(nil, TierConfig{Name: "off", Rate: 0})
	if ok, _ := l2.Allow("off", "k", 1e9); !ok {
		t.Fatal("Rate<=0 tier denied; it must not be installed")
	}
}

func TestRateLimitBurstDefault(t *testing.T) {
	clk := newFakeClock()
	l := NewRateLimiter(clk.Now, TierConfig{Name: "t", Rate: 3}) // Burst -> 30
	if ok, _ := l.Allow("t", "k", 30); !ok {
		t.Fatal("default burst should be 10x rate = 30")
	}
	if ok, _ := l.Allow("t", "k", 0.5); ok {
		t.Fatal("bucket should be empty after spending the default burst")
	}
}

func TestRateLimitZeroAllocAllowPath(t *testing.T) {
	clk := newFakeClock()
	l := NewRateLimiter(clk.Now, TierConfig{Name: "t", Rate: 1000, Burst: 1e9})
	l.Allow("t", "hot", 1) // warm up: create the bucket
	allocs := testing.AllocsPerRun(1000, func() {
		l.Allow("t", "hot", 1)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Allow allocates %.1f objects/op, want 0", allocs)
	}
}

func TestRateLimitHealthGauges(t *testing.T) {
	clk := newFakeClock()
	l := NewRateLimiter(clk.Now,
		TierConfig{Name: "a", Rate: 1, Burst: 1},
		TierConfig{Name: "b", Rate: 1, Burst: 1},
	)
	l.Allow("a", "k1", 1) // allowed
	l.Allow("a", "k1", 1) // throttled
	l.Allow("a", "k1", 1) // throttled
	l.Allow("a", "k2", 1) // allowed
	l.Allow("a", "k2", 1) // throttled
	l.Allow("b", "k1", 1) // allowed

	h := l.Health()
	if h.Allowed != 3 || h.Throttled != 3 {
		t.Fatalf("totals = %d allowed / %d throttled, want 3/3", h.Allowed, h.Throttled)
	}
	if h.Buckets != 3 {
		t.Fatalf("buckets = %d, want 3 (a:k1, a:k2, b:k1)", h.Buckets)
	}
	a := h.Tiers["a"]
	if a.Allowed != 2 || a.Throttled != 3 || a.Buckets != 2 {
		t.Fatalf("tier a = %+v, want 2 allowed / 3 throttled / 2 buckets", a)
	}
	// k1 holds 2 of the 3 throttles: top tenant share 2/3.
	if got, want := h.TopTenantShare, 2.0/3.0; got != want {
		t.Fatalf("top tenant share = %v, want %v", got, want)
	}
}

func TestRateLimitConcurrentAccounting(t *testing.T) {
	clk := newFakeClock()
	l := NewRateLimiter(clk.Now, TierConfig{Name: "t", Rate: 1, Burst: 100})
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := fmt.Sprintf("tenant-%d", w%4)
			for i := 0; i < perWorker; i++ {
				l.Allow("t", key, 1)
			}
		}(w)
	}
	wg.Wait()
	h := l.Health()
	if total := h.Allowed + h.Throttled; total != workers*perWorker {
		t.Fatalf("allowed+throttled = %d, want %d (no request unaccounted)", total, workers*perWorker)
	}
	// 4 distinct keys, 100-token frozen-clock budget each.
	if h.Allowed != 400 {
		t.Fatalf("allowed = %d, want 400 (4 keys x burst 100, frozen clock)", h.Allowed)
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{time.Millisecond, 1},
		{time.Second, 1},
		{1500 * time.Millisecond, 2},
		{2 * time.Second, 2},
		{10*time.Second + time.Nanosecond, 11},
	}
	for _, c := range cases {
		if got := RetryAfterSeconds(c.d); got != c.want {
			t.Errorf("RetryAfterSeconds(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}
