package requester

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"umac/internal/core"
)

// These tests prove the requester's consumer side of the event control
// plane: consent resolution arrives over GET /v1/events/consent with no
// polling loop — only the single post-subscribe status check that closes
// the resolved-before-subscribe race — a resync marker triggers exactly
// one extra status check, and Close unblocks a parked consent wait
// immediately.

// sseAM is a fake AM whose consent channel is the event stream.
type sseAM struct {
	srv *httptest.Server
	// serveStream writes SSE frames for one subscription; returning ends
	// the stream (the connection closes).
	serveStream func(w http.ResponseWriter, flush func(), ticket string)

	statusResponse core.ConsentStatus
	// statusResolvedAfter hides statusResponse's resolution from the
	// first N status calls (they answer "still pending").
	statusResolvedAfter int32
	statusCalls         atomic.Int32
	streamCalls         atomic.Int32
}

func newSSEAM(t *testing.T) *sseAM {
	t.Helper()
	f := &sseAM{}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/token", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(202)
		json.NewEncoder(w).Encode(core.TokenResponse{PendingConsent: "ticket-1"})
	})
	mux.HandleFunc("GET /v1/token/status", func(w http.ResponseWriter, r *http.Request) {
		n := f.statusCalls.Add(1)
		resp := f.statusResponse
		if n <= f.statusResolvedAfter {
			resp = core.ConsentStatus{Ticket: resp.Ticket}
		}
		json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("GET /v1/events/consent", func(w http.ResponseWriter, r *http.Request) {
		f.streamCalls.Add(1)
		ticket := r.URL.Query().Get(core.ParamTicket)
		if ticket == "" {
			http.Error(w, "missing ticket", 400)
			return
		}
		fl := w.(http.Flusher)
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(200)
		fmt.Fprint(w, ": stream\n\n")
		fl.Flush()
		f.serveStream(w, fl.Flush, ticket)
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

// writeEvent frames one event the way the real AM does.
func writeEvent(w http.ResponseWriter, flush func(), e core.Event) {
	data, _ := json.Marshal(e)
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data)
	flush()
}

func consentEvent(ticket string, approved bool, token string) core.Event {
	return core.Event{
		Seq: 1, Type: core.EventConsent, Ticket: ticket,
		Consent: &core.ConsentStatus{
			Ticket: ticket, Resolved: true, Approved: approved, Token: token,
		},
	}
}

func TestConsentStreamApproved(t *testing.T) {
	am := newSSEAM(t)
	am.serveStream = func(w http.ResponseWriter, flush func(), ticket string) {
		writeEvent(w, flush, consentEvent(ticket, true, "tok-good"))
	}
	host := newFakeHost(t, am.srv.URL, "tok-good")
	c := New(Config{ID: "app-1", Subject: "evelyn", ConsentTimeout: 5 * time.Second})
	body, err := c.Fetch(host.srv.URL+"/res-1", core.ActionRead)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "protected content" {
		t.Fatalf("body = %q", body)
	}
	if am.statusCalls.Load() != 1 {
		t.Fatalf("status calls = %d, want 1 (the subscribe-race check; resolution came over the stream)", am.statusCalls.Load())
	}
	if am.streamCalls.Load() != 1 {
		t.Fatalf("stream subscriptions = %d", am.streamCalls.Load())
	}
}

func TestConsentStreamDenied(t *testing.T) {
	am := newSSEAM(t)
	am.serveStream = func(w http.ResponseWriter, flush func(), ticket string) {
		writeEvent(w, flush, consentEvent(ticket, false, ""))
	}
	host := newFakeHost(t, am.srv.URL, "never")
	c := New(Config{ID: "app-1", ConsentTimeout: 5 * time.Second})
	_, err := c.Fetch(host.srv.URL+"/res-1", core.ActionRead)
	if !errors.Is(err, ErrConsentDenied) {
		t.Fatalf("err = %v", err)
	}
	if am.statusCalls.Load() != 1 {
		t.Fatalf("status calls = %d, want 1 (the subscribe-race check)", am.statusCalls.Load())
	}
}

// TestConsentStreamResyncChecksPollOnce: a resync marker means the
// resolution may be among the lost events — the requester must check the
// status endpoint once, then keep streaming.
func TestConsentStreamResyncChecksPollOnce(t *testing.T) {
	am := newSSEAM(t)
	am.statusResponse = core.ConsentStatus{
		Ticket: "ticket-1", Resolved: true, Approved: true, Token: "tok-good",
	}
	// The first status call is the subscribe-race check — it must still
	// answer "pending" so the resync path is what resolves the wait.
	am.statusResolvedAfter = 1
	am.serveStream = func(w http.ResponseWriter, flush func(), ticket string) {
		writeEvent(w, flush, core.Event{Seq: 9, Type: core.EventResync})
		// Keep the stream open; the poll check must resolve the wait.
		time.Sleep(2 * time.Second)
	}
	host := newFakeHost(t, am.srv.URL, "tok-good")
	c := New(Config{ID: "app-1", ConsentTimeout: 5 * time.Second})
	body, err := c.Fetch(host.srv.URL+"/res-1", core.ActionRead)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "protected content" {
		t.Fatalf("body = %q", body)
	}
	if am.statusCalls.Load() != 2 {
		t.Fatalf("status calls = %d, want exactly 2 (subscribe-race check + resync check)", am.statusCalls.Load())
	}
}

// TestConsentResolvedBeforeSubscribe: the owner resolved the ticket in
// the window between RequestToken handing it out and the consent stream
// registering — the event was published with no subscriber and will never
// replay. The single post-subscribe status check must close that race;
// without it the wait parks until ConsentTimeout.
func TestConsentResolvedBeforeSubscribe(t *testing.T) {
	am := newSSEAM(t)
	am.statusResponse = core.ConsentStatus{
		Ticket: "ticket-1", Resolved: true, Approved: true, Token: "tok-good",
	}
	release := make(chan struct{})
	defer close(release)
	am.serveStream = func(w http.ResponseWriter, flush func(), ticket string) {
		<-release // the resolution event already fired; nothing ever arrives
	}
	host := newFakeHost(t, am.srv.URL, "tok-good")
	c := New(Config{ID: "app-1", Subject: "evelyn", ConsentTimeout: 5 * time.Second})
	start := time.Now()
	body, err := c.Fetch(host.srv.URL+"/res-1", core.ActionRead)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "protected content" {
		t.Fatalf("body = %q", body)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("fetch took %v: the subscribe-race check did not fire", elapsed)
	}
	if am.statusCalls.Load() != 1 {
		t.Fatalf("status calls = %d, want 1", am.statusCalls.Load())
	}
}

// TestConsentStreamDisabledPinsPolling: DisableConsentStream never touches
// the events endpoint.
func TestConsentStreamDisabledPinsPolling(t *testing.T) {
	am := newSSEAM(t)
	am.statusResponse = core.ConsentStatus{
		Ticket: "ticket-1", Resolved: true, Approved: true, Token: "tok-good",
	}
	am.serveStream = func(w http.ResponseWriter, flush func(), ticket string) {
		t.Error("stream subscribed despite DisableConsentStream")
	}
	host := newFakeHost(t, am.srv.URL, "tok-good")
	c := New(Config{
		ID: "app-1", DisableConsentStream: true,
		ConsentPollInterval: time.Millisecond, ConsentTimeout: 5 * time.Second,
	})
	if _, err := c.Fetch(host.srv.URL+"/res-1", core.ActionRead); err != nil {
		t.Fatal(err)
	}
	if am.streamCalls.Load() != 0 {
		t.Fatalf("stream subscriptions = %d, want 0", am.streamCalls.Load())
	}
	if am.statusCalls.Load() == 0 {
		t.Fatal("polling path never polled")
	}
}

// TestCloseUnblocksConsentWait: Close severs a parked consent wait
// immediately — no waiting out ConsentTimeout.
func TestCloseUnblocksConsentWait(t *testing.T) {
	am := newSSEAM(t)
	release := make(chan struct{})
	am.serveStream = func(w http.ResponseWriter, flush func(), ticket string) {
		<-release // hold the stream open, delivering nothing
	}
	defer close(release)
	host := newFakeHost(t, am.srv.URL, "never")
	c := New(Config{ID: "app-1", ConsentTimeout: time.Minute})
	errc := make(chan error, 1)
	go func() {
		_, err := c.Fetch(host.srv.URL+"/res-1", core.ActionRead)
		errc <- err
	}()
	// Let the fetch reach the consent wait, then close the client.
	deadline := time.Now().Add(5 * time.Second)
	for am.streamCalls.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	c.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("fetch succeeded after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Fetch still blocked after Close")
	}
}
