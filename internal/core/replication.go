package core

import "encoding/json"

// This file defines the wire vocabulary of the AM replication surface
// (GET /v1/replication/snapshot, GET /v1/replication/wal): the primary
// streams its checksummed write-ahead log to followers as ReplRecord
// values, each stamped with a monotonically increasing sequence number, and
// serves ReplSnapshot bootstrap images to followers that fall behind the
// retained log window. See docs/PROTOCOL.md ("Replication") and
// docs/OPERATIONS.md for the deployment topology.

// Replicated operations. They mirror the store's WAL record operations and
// are part of the wire contract: values are only ever added.
const (
	// ReplOpPut stores (or overwrites) an entity.
	ReplOpPut = "put"
	// ReplOpDelete removes an entity.
	ReplOpDelete = "del"
)

// ReplRecord is one replicated datastore mutation: a write-ahead-log record
// with its global sequence number. Seq values are assigned contiguously by
// the primary; a follower applies record N+1 only after record N, so a gap
// is detectable and a resume after restart is exact.
type ReplRecord struct {
	Seq     int64           `json:"seq"`
	Op      string          `json:"op"`
	Kind    string          `json:"kind"`
	Key     string          `json:"key"`
	Version int64           `json:"version,omitempty"`
	Data    json.RawMessage `json:"data,omitempty"`
}

// ReplSnapshot is the bootstrap image served by
// GET /v1/replication/snapshot: the full datastore contents as put records
// (without meaningful Seq values) plus the sequence number the snapshot is
// consistent at. A follower installs the records wholesale and then tails
// the WAL from Seq.
type ReplSnapshot struct {
	// Seq is the last mutation included in the snapshot; tailing from it
	// loses nothing and duplicates nothing.
	Seq     int64        `json:"seq"`
	Records []ReplRecord `json:"records"`
}

// ReplWALPage answers GET /v1/replication/wal: the records after the
// requested offset, capped at the requested batch size.
type ReplWALPage struct {
	// Records are the mutations with Seq greater than the ?from= offset, in
	// sequence order. Empty when the follower is caught up.
	Records []ReplRecord `json:"records"`
	// LastSeq is the primary's newest sequence number at response time;
	// LastSeq minus the follower's applied offset is the replication lag in
	// records.
	LastSeq int64 `json:"last_seq"`
}

// Replication roles, as reported in ReplicationHealth.Role.
const (
	// ReplRolePrimary serves writes and streams its WAL to followers.
	ReplRolePrimary = "primary"
	// ReplRoleFollower applies the primary's WAL and serves reads only.
	ReplRoleFollower = "follower"
)

// ReplicationHealth reports a node's replication state on GET /v1/healthz
// and GET /v1/metrics. On a primary only Role and LastSeq are meaningful;
// a follower additionally reports its sync progress against the primary.
type ReplicationHealth struct {
	// Role is ReplRolePrimary or ReplRoleFollower.
	Role string `json:"role"`
	// LastSeq is the node's applied (follower) or assigned (primary)
	// write-ahead-log sequence number.
	LastSeq int64 `json:"last_seq"`
	// Primary is the primary's base URL (followers only).
	Primary string `json:"primary,omitempty"`
	// PrimarySeq is the primary's newest sequence number as of the last
	// successful sync (followers only).
	PrimarySeq int64 `json:"primary_seq,omitempty"`
	// LagRecords is max(PrimarySeq-LastSeq, 0): how many acknowledged
	// primary writes this follower has not applied yet (followers only).
	LagRecords int64 `json:"lag_records"`
	// Connected reports whether the last sync attempt against the primary
	// succeeded (followers only).
	Connected bool `json:"connected"`
	// AppliedRecords counts records applied since this process started
	// (followers only); sampled twice, it yields the apply rate.
	AppliedRecords int64 `json:"applied_records,omitempty"`
}
