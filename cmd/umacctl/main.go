// Command umacctl is the policy-management CLI: it converts between the
// textual policy DSL and the JSON/XML interchange formats (the Section VI
// REST export/import formats), talks to a running AM, and queries the
// consolidated audit view.
//
// Subcommands:
//
//	umacctl parse  -owner bob < policies.umac        DSL → JSON
//	umacctl format < policies.json                   JSON → DSL
//	umacctl export -am URL -user bob [-format xml]   pull policies from an AM
//	umacctl import -am URL -user bob < policies.json push policies to an AM
//	umacctl audit  -am URL -user bob                 consolidated audit summary
//	umacctl migrate-owner -owner bob -from URL -to URL -to-shard NAME \
//	    -repl-secret-file F                          live-move an owner between shards
//
// migrate-owner drives the 7-step live migration drill (see
// docs/OPERATIONS.md, "Sharded cluster"): scoped snapshot, import,
// WAL-tail catch-up, ownership flip on both shards, final drain — with
// zero acknowledged-write loss and no decision served from the losing
// shard after cutover.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"umac"
	"umac/internal/amclient"
	"umac/internal/core"
	"umac/internal/policy"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "parse":
		cmdParse(os.Args[2:])
	case "format":
		cmdFormat(os.Args[2:])
	case "export":
		cmdExport(os.Args[2:])
	case "import":
		cmdImport(os.Args[2:])
	case "audit":
		cmdAudit(os.Args[2:])
	case "migrate-owner":
		cmdMigrateOwner(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: umacctl <parse|format|export|import|audit|migrate-owner> [flags]")
	os.Exit(2)
}

func cmdParse(args []string) {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	owner := fs.String("owner", "", "policy owner")
	fs.Parse(args)
	if *owner == "" {
		log.Fatal("umacctl parse: -owner required")
	}
	src, err := io.ReadAll(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	policies, err := umac.ParsePolicies(umac.UserID(*owner), string(src))
	if err != nil {
		log.Fatal(err)
	}
	if err := policy.Export(os.Stdout, policies, policy.FormatJSON); err != nil {
		log.Fatal(err)
	}
}

func cmdFormat(args []string) {
	fs := flag.NewFlagSet("format", flag.ExitOnError)
	format := fs.String("format", "json", "input format: json|xml")
	fs.Parse(args)
	f, err := policy.ParseFormat(*format)
	if err != nil {
		log.Fatal(err)
	}
	policies, err := policy.Import(os.Stdin, f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(umac.FormatPolicies(policies))
}

// amClient builds the typed AM client acting as user.
func amClient(amURL, user string) *amclient.Client {
	return amclient.New(amclient.Config{BaseURL: amURL, User: core.UserID(user)})
}

func cmdExport(args []string) {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	amURL := fs.String("am", "", "AM base URL")
	user := fs.String("user", "", "acting user")
	format := fs.String("format", "json", "export format: json|xml")
	fs.Parse(args)
	if *amURL == "" || *user == "" {
		log.Fatal("umacctl export: -am and -user required")
	}
	if err := amClient(*amURL, *user).ExportPolicies(os.Stdout, "", *format); err != nil {
		log.Fatalf("umacctl export: %v", err)
	}
}

func cmdImport(args []string) {
	fs := flag.NewFlagSet("import", flag.ExitOnError)
	amURL := fs.String("am", "", "AM base URL")
	user := fs.String("user", "", "acting user")
	format := fs.String("format", "json", "import format: json|xml")
	fs.Parse(args)
	if *amURL == "" || *user == "" {
		log.Fatal("umacctl import: -am and -user required")
	}
	n, err := amClient(*amURL, *user).ImportPolicies(os.Stdin, "", *format)
	if err != nil {
		log.Fatalf("umacctl import: %v", err)
	}
	fmt.Printf("{\"imported\": %d}\n", n)
}

func cmdMigrateOwner(args []string) {
	fs := flag.NewFlagSet("migrate-owner", flag.ExitOnError)
	owner := fs.String("owner", "", "resource owner to migrate")
	from := fs.String("from", "", "losing shard's primary base URL")
	to := fs.String("to", "", "gaining shard's primary base URL")
	toShard := fs.String("to-shard", "", "gaining shard's name (as in the cluster ring)")
	secret := fs.String("repl-secret", "", "shared replication secret (prefer -repl-secret-file)")
	secretF := fs.String("repl-secret-file", "", "file holding the shared replication secret")
	fs.Parse(args)
	if *owner == "" || *from == "" || *to == "" || *toShard == "" {
		log.Fatal("umacctl migrate-owner: -owner, -from, -to and -to-shard required")
	}
	sec := *secret
	if *secretF != "" {
		data, err := os.ReadFile(*secretF)
		if err != nil {
			log.Fatalf("umacctl migrate-owner: read -repl-secret-file: %v", err)
		}
		sec = strings.TrimSpace(string(data))
	}
	if sec == "" {
		log.Fatal("umacctl migrate-owner: a replication secret is required (-repl-secret-file)")
	}
	src := amclient.New(amclient.Config{BaseURL: *from, ReplSecret: sec})
	dst := amclient.New(amclient.Config{BaseURL: *to, ReplSecret: sec})
	rep, err := amclient.MigrateOwner(src, dst, core.UserID(*owner), *toShard,
		func(step int, msg string) { fmt.Fprintf(os.Stderr, "[%d/7] %s\n", step, msg) })
	if err != nil {
		log.Fatalf("umacctl migrate-owner: %v", err)
	}
	out, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Println(string(out))
}

func cmdAudit(args []string) {
	fs := flag.NewFlagSet("audit", flag.ExitOnError)
	amURL := fs.String("am", "", "AM base URL")
	user := fs.String("user", "", "acting user")
	fs.Parse(args)
	if *amURL == "" || *user == "" {
		log.Fatal("umacctl audit: -am and -user required")
	}
	summary, err := amClient(*amURL, *user).AuditSummary("")
	if err != nil {
		log.Fatalf("umacctl audit: %v", err)
	}
	out, _ := json.MarshalIndent(summary, "", "  ")
	fmt.Println(string(out))
}
