package audit

import (
	"sync"
	"time"
)

// Pipeline decouples hot-path event production from log appends: producers
// enqueue onto a buffered channel and a single worker drains it, appending
// events to the Log in batches under one lock acquisition. The AM's
// decision path uses it so audit writes happen outside the decision
// critical section.
//
// The pipeline is lossless: Enqueue blocks when the buffer is full
// (backpressure instead of dropped audit records), and Flush/Close drain
// everything already enqueued before returning. Readers that need
// read-your-writes consistency call Flush before querying the log.
type Pipeline struct {
	log *Log

	mu     sync.RWMutex // guards closed vs. sends on ch
	closed bool

	ch      chan pipelineMsg
	stopped chan struct{}
}

// pipelineMsg is either one event or a flush barrier (flush != nil).
type pipelineMsg struct {
	event Event
	flush chan struct{}
}

// maxAuditBatch bounds how many events one AppendBatch call carries, so a
// deep backlog cannot hold the log lock for unbounded time.
const maxAuditBatch = 256

// DefaultPipelineBuffer is the channel capacity used when NewPipeline
// receives buffer <= 0.
const DefaultPipelineBuffer = 1024

// NewPipeline starts a pipeline appending into log.
func NewPipeline(log *Log, buffer int) *Pipeline {
	if buffer <= 0 {
		buffer = DefaultPipelineBuffer
	}
	p := &Pipeline{
		log:     log,
		ch:      make(chan pipelineMsg, buffer),
		stopped: make(chan struct{}),
	}
	go p.run()
	return p
}

func (p *Pipeline) run() {
	defer close(p.stopped)
	batch := make([]Event, 0, maxAuditBatch)
	var flushes []chan struct{}
	for msg := range p.ch {
		batch, flushes = batch[:0], flushes[:0]
		if msg.flush != nil {
			flushes = append(flushes, msg.flush)
		} else {
			batch = append(batch, msg.event)
		}
		// Greedily drain whatever else is already buffered, up to the
		// batch cap, so a burst of decisions costs one lock acquisition.
	drain:
		for len(batch) < maxAuditBatch {
			select {
			case m, ok := <-p.ch:
				if !ok {
					break drain
				}
				if m.flush != nil {
					flushes = append(flushes, m.flush)
				} else {
					batch = append(batch, m.event)
				}
			default:
				break drain
			}
		}
		if len(batch) > 0 {
			p.log.AppendBatch(batch)
		}
		for _, f := range flushes {
			close(f)
		}
	}
}

// Enqueue hands an event to the pipeline. It blocks if the buffer is full
// (the worker is draining continuously, so this only happens under sustained
// overload). After Close, events are appended synchronously so no producer
// racing a shutdown ever loses a record.
func (p *Pipeline) Enqueue(e Event) {
	// Stamp the time at enqueue, not at drain: the audit trail must record
	// when the decision happened, not when the worker got to it — sync
	// Appends from PAP mutations interleave with these events.
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		p.log.Append(e)
		return
	}
	// Send while holding the read lock: Close takes the write lock, so the
	// channel cannot close mid-send. The worker never takes p.mu, so a
	// blocked send still drains.
	p.ch <- pipelineMsg{event: e}
	p.mu.RUnlock()
}

// Depth reports how many events are buffered but not yet appended — the
// health signal surfaced by the AM's /v1/healthz (a persistently full
// buffer means the log writer is the bottleneck).
func (p *Pipeline) Depth() int { return len(p.ch) }

// Capacity reports the pipeline's buffer size.
func (p *Pipeline) Capacity() int { return cap(p.ch) }

// Flush blocks until every event enqueued before the call is in the log.
func (p *Pipeline) Flush() {
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return
	}
	done := make(chan struct{})
	p.ch <- pipelineMsg{flush: done}
	p.mu.RUnlock()
	<-done
}

// Close drains outstanding events and stops the worker. Safe to call more
// than once; Enqueue after Close degrades to a synchronous append.
func (p *Pipeline) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.stopped
		return
	}
	p.closed = true
	close(p.ch)
	p.mu.Unlock()
	<-p.stopped
}
