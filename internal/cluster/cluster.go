// Package cluster implements the consistent-hash owner ring of a sharded
// AM deployment. The paper's AM centralizes every user's authorization
// state in one service; scaling the write path past one primary means
// partitioning that state — and the UMA model partitions cleanly by
// resource owner, because each owner's realms, policies, groups, grants
// and consents form an independent closure no cross-owner decision ever
// reads. The ring maps each owner to exactly one shard (a replication
// group: primary plus followers) via consistent hashing with virtual
// nodes, so adding or removing a shard remaps only ~1/N of the owners.
//
// The ring itself is static configuration (every node and client is built
// with the same shard list); per-owner overrides — the live-migration
// cutover state — live in each AM's replicated store, not here.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"umac/internal/core"
)

// DefaultVnodes is the virtual-node count per shard when a ring is built
// with vnodes <= 0. 64 points per shard keeps the expected owner imbalance
// across shards under a few percent.
const DefaultVnodes = 64

// point is one virtual node on the ring: a hash position owned by a shard.
type point struct {
	hash  uint64
	shard int // index into Ring.shards
}

// Ring maps resource owners onto shards by consistent hashing. A Ring is
// immutable after New and safe for concurrent use.
type Ring struct {
	shards []core.ShardInfo
	byName map[string]int
	points []point
	vnodes int
}

// New builds a ring over the given shards with vnodes virtual nodes per
// shard (DefaultVnodes when vnodes <= 0). Shard names must be non-empty
// and unique; order does not affect the mapping (only names seed the
// ring).
func New(shards []core.ShardInfo, vnodes int) (*Ring, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one shard")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{
		shards: append([]core.ShardInfo(nil), shards...),
		byName: make(map[string]int, len(shards)),
		points: make([]point, 0, len(shards)*vnodes),
		vnodes: vnodes,
	}
	for i, s := range r.shards {
		if s.Name == "" {
			return nil, fmt.Errorf("cluster: shard %d has no name", i)
		}
		if _, dup := r.byName[s.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate shard name %q", s.Name)
		}
		r.byName[s.Name] = i
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{
				hash:  hash64(fmt.Sprintf("%s#%d", s.Name, v)),
				shard: i,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Identical hash points (vanishingly rare) tie-break by shard so
		// the mapping stays deterministic across nodes.
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// hash64 is the ring hash: FNV-64a finished with a splitmix64 mix, stable
// across processes and releases. The finalizer decorrelates the nearly
// sequential inputs ("shard-a#0", "shard-a#1", …) so vnode points spread
// uniformly instead of clustering.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Owner maps an owner to its shard: the first ring point clockwise from
// the owner's hash.
func (r *Ring) Owner(owner core.UserID) core.ShardInfo {
	h := hash64(string(owner))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.shards[r.points[i].shard]
}

// Shard returns the shard with the given name.
func (r *Ring) Shard(name string) (core.ShardInfo, bool) {
	i, ok := r.byName[name]
	if !ok {
		return core.ShardInfo{}, false
	}
	return r.shards[i], true
}

// Shards returns the ring membership in configuration order.
func (r *Ring) Shards() []core.ShardInfo {
	return append([]core.ShardInfo(nil), r.shards...)
}

// Vnodes returns the virtual-node count per shard the ring was built with.
func (r *Ring) Vnodes() int { return r.vnodes }

// ParseSpec parses the -ring flag syntax into shard infos:
//
//	name=primaryURL[|followerURL...][,name=...]
//
// Shards are comma-separated; a shard's endpoints are pipe-separated with
// the primary first. Example:
//
//	shard-a=http://a0:8080|http://a1:8081,shard-b=http://b0:8080
func ParseSpec(spec string) ([]core.ShardInfo, error) {
	var shards []core.ShardInfo
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, urls, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("cluster: bad ring entry %q (want name=url[|url...])", part)
		}
		var endpoints []string
		for _, u := range strings.Split(urls, "|") {
			u = strings.TrimSuffix(strings.TrimSpace(u), "/")
			if u != "" {
				endpoints = append(endpoints, u)
			}
		}
		if len(endpoints) == 0 {
			return nil, fmt.Errorf("cluster: ring entry %q names no endpoints", part)
		}
		shards = append(shards, core.ShardInfo{
			Name:      strings.TrimSpace(name),
			Primary:   endpoints[0],
			Endpoints: endpoints,
		})
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: empty ring spec")
	}
	return shards, nil
}

// FormatSpec renders shard infos back into the -ring flag syntax (the
// inverse of ParseSpec), for logs and generated quickstarts.
func FormatSpec(shards []core.ShardInfo) string {
	parts := make([]string, 0, len(shards))
	for _, s := range shards {
		endpoints := s.Endpoints
		if len(endpoints) == 0 {
			endpoints = []string{s.Primary}
		}
		parts = append(parts, s.Name+"="+strings.Join(endpoints, "|"))
	}
	return strings.Join(parts, ",")
}
