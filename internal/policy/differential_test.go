package policy

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"umac/internal/core"
)

// Differential property test for the compiled decision path: for randomly
// generated policies, groups and requests, EvaluateCompiled must produce
// byte-for-byte the same Result as Evaluate — decision, policy ID, reason
// string (rule indices included), obligations and cache TTL. The
// generator also recompiles and mutates policies mid-stream, mimicking the
// AM index's invalidate-and-rebuild cycle, so staleness bugs in the
// compile step itself would surface as divergence.

// diffBase is the fixed evaluation instant; every generated time window is
// placed relative to it so runs are deterministic per seed.
var diffBase = time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)

var diffActions = []core.Action{
	core.ActionRead, core.ActionWrite, core.ActionDelete, core.ActionList, core.ActionShare,
}

var (
	diffUsers      = []core.UserID{"alice", "bob", "chris", "dave", "erin", "frank"}
	diffRequesters = []core.RequesterID{"browser", "gallery", "printer", "feed"}
	diffGroups     = []string{"friends", "family", "work", "book-club"}
	diffClaims     = []string{"paid", "age", "tos"}
)

type diffGen struct {
	rng *rand.Rand
}

func pick[T any](g *diffGen, s []T) T { return s[g.rng.Intn(len(s))] }

func (g *diffGen) subject() Subject {
	switch g.rng.Intn(5) {
	case 0:
		return Subject{Type: SubjectEveryone}
	case 1:
		return Subject{Type: SubjectOwner}
	case 2:
		return Subject{Type: SubjectUser, Name: string(pick(g, diffUsers))}
	case 3:
		return Subject{Type: SubjectGroup, Name: pick(g, diffGroups)}
	default:
		return Subject{Type: SubjectRequester, Name: string(pick(g, diffRequesters))}
	}
}

func (g *diffGen) condition() Condition {
	switch g.rng.Intn(3) {
	case 0:
		// Window around (or deliberately missing) the evaluation instant.
		off := time.Duration(g.rng.Intn(120)-60) * time.Minute
		return Condition{
			Type:      CondTimeWindow,
			NotBefore: diffBase.Add(off - 30*time.Minute),
			NotAfter:  diffBase.Add(off + 30*time.Minute),
		}
	case 1:
		c := Condition{Type: CondRequireClaim, Claim: pick(g, diffClaims)}
		if g.rng.Intn(2) == 0 {
			c.Value = "yes"
		}
		return c
	default:
		return Condition{Type: CondRequireConsent}
	}
}

func (g *diffGen) rule() Rule {
	r := Rule{Effect: EffectPermit}
	if g.rng.Intn(3) == 0 {
		r.Effect = EffectDeny
	}
	for n := 1 + g.rng.Intn(3); n > 0; n-- {
		r.Subjects = append(r.Subjects, g.subject())
	}
	// ~1/3 wildcard (all actions), otherwise 1-3 explicit actions.
	if g.rng.Intn(3) != 0 {
		for n := 1 + g.rng.Intn(3); n > 0; n-- {
			r.Actions = append(r.Actions, pick(g, diffActions))
		}
	}
	if g.rng.Intn(5) < 2 {
		for n := 1 + g.rng.Intn(2); n > 0; n-- {
			r.Conditions = append(r.Conditions, g.condition())
		}
	}
	return r
}

func (g *diffGen) policy(id string, owner core.UserID, kind Kind) *Policy {
	p := &Policy{
		ID:    core.PolicyID(id),
		Owner: owner,
		Name:  id,
		Kind:  kind,
	}
	switch g.rng.Intn(4) {
	case 0:
		p.Combining = CombinePermitOverrides
	case 1:
		p.Combining = CombineFirstApplicable
	case 2:
		p.Combining = CombineDenyOverrides
		// case 3: leave empty (implicit deny-overrides)
	}
	if g.rng.Intn(4) == 0 {
		p.CacheTTLSeconds = g.rng.Intn(600) - 120
	}
	for n := 1 + g.rng.Intn(8); n > 0; n-- {
		p.Rules = append(p.Rules, g.rule())
	}
	return p
}

func (g *diffGen) request(owner core.UserID) Request {
	req := Request{
		Requester: pick(g, diffRequesters),
		Action:    pick(g, diffActions),
		Realm:     "travel",
		Resource:  core.ResourceRef{Host: "webpics", Resource: "photo-1", Realm: "travel"},
		Owner:     owner,
		Time:      diffBase,
	}
	if g.rng.Intn(5) != 0 {
		req.Subject = pick(g, diffUsers)
	}
	if g.rng.Intn(2) == 0 {
		req.ConsentGranted = true
	}
	if n := g.rng.Intn(3); n > 0 {
		req.Claims = map[string]string{}
		for ; n > 0; n-- {
			val := "yes"
			if g.rng.Intn(3) == 0 {
				val = "no"
			}
			req.Claims[pick(g, diffClaims)] = val
		}
	}
	return req
}

// mutate returns a structurally edited copy of p — the "user edited the
// policy, index rebuilds" event.
func (g *diffGen) mutate(p *Policy) *Policy {
	cp := *p
	cp.Rules = append([]Rule(nil), p.Rules...)
	switch g.rng.Intn(3) {
	case 0:
		cp.Rules = append(cp.Rules, g.rule())
	case 1:
		if len(cp.Rules) > 1 {
			cp.Rules = cp.Rules[:len(cp.Rules)-1]
		} else {
			cp.Rules[0] = g.rule()
		}
	default:
		cp.Rules[g.rng.Intn(len(cp.Rules))] = g.rule()
	}
	return &cp
}

func TestDifferentialCompiledVsScan(t *testing.T) {
	const queriesPerSeed = 4000
	for _, seed := range []int64{1, 7, 20260807} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			g := &diffGen{rng: rand.New(rand.NewSource(seed))}
			dir := &Directory{}
			for _, owner := range diffUsers {
				for _, grp := range diffGroups {
					for _, u := range diffUsers {
						if g.rng.Intn(3) == 0 {
							dir.Add(owner, grp, u)
						}
					}
				}
			}
			e := NewEngine(dir)

			owner := pick(g, diffUsers)
			general := g.policy("gen", owner, KindGeneral)
			specific := g.policy("spec", owner, KindSpecific)
			cgen, cspec := Compile(general), Compile(specific)

			for q := 0; q < queriesPerSeed; q++ {
				// Random invalidation/rebuild interleavings: mutate a policy
				// (recompiling, as the AM index does on invalidation), drop a
				// policy to nil, or resurrect one; occasionally churn group
				// membership, which must flow through live on BOTH paths.
				switch g.rng.Intn(20) {
				case 0:
					if general == nil {
						general = g.policy("gen", owner, KindGeneral)
					} else {
						general = g.mutate(general)
					}
					cgen = Compile(general)
				case 1:
					if specific == nil {
						specific = g.policy("spec", owner, KindSpecific)
					} else {
						specific = g.mutate(specific)
					}
					cspec = Compile(specific)
				case 2:
					specific = nil
					cspec = nil
				case 3:
					specific = g.policy("spec", owner, KindSpecific)
					cspec = Compile(specific)
				case 4:
					general = nil
					cgen = nil
				case 5:
					general = g.policy("gen", owner, KindGeneral)
					cgen = Compile(general)
				case 6:
					u, grp := pick(g, diffUsers), pick(g, diffGroups)
					if g.rng.Intn(2) == 0 {
						dir.Add(owner, grp, u)
					} else {
						dir.Remove(owner, grp, u)
					}
				}

				req := g.request(owner)
				scan := e.Evaluate(req, general, specific)
				compiled := e.EvaluateCompiled(req, cgen, cspec)
				if !reflect.DeepEqual(scan, compiled) {
					t.Fatalf("divergence at query %d:\n  request:  %+v\n  general:  %+v\n  specific: %+v\n  scan:     %+v\n  compiled: %+v",
						q, req, general, specific, scan, compiled)
				}
			}
		})
	}
}

// TestCompiledCandidatesCoverExactly pins the index structure itself: for
// every action, the candidate set is precisely the rules whose coversAction
// reports true, in original order.
func TestCompiledCandidatesCoverExactly(t *testing.T) {
	g := &diffGen{rng: rand.New(rand.NewSource(42))}
	for trial := 0; trial < 200; trial++ {
		p := g.policy(fmt.Sprintf("p%d", trial), "bob", KindGeneral)
		c := Compile(p)
		for _, a := range diffActions {
			var want []int
			for i := range p.Rules {
				if p.Rules[i].coversAction(a) {
					want = append(want, i)
				}
			}
			got := c.candidates(a)
			if len(got) != len(want) {
				t.Fatalf("trial %d action %s: candidates %v want %v", trial, a, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d action %s: candidates %v want %v", trial, a, got, want)
				}
			}
		}
	}
}

func TestCompileNil(t *testing.T) {
	if Compile(nil) != nil {
		t.Fatal("Compile(nil) != nil")
	}
}
