module umac

go 1.24
