package store

import (
	"runtime"

	"umac/internal/core"
)

// This file is the group-commit core of the durable write path (the
// classic ARIES/Postgres discipline): concurrent writers do not write the
// log themselves. Each one stamps the next sequence number, appends its
// framed record to the open batch, and blocks on the batch's notifier. A
// single committer goroutine takes whatever has queued, lands it with one
// write(2) and at most one fsync, then releases every writer in the batch
// at once. Acknowledged still means durable — but N concurrent writers
// share one fsync instead of paying for N.
//
// The disk write happens outside walMu, so new writers keep enqueuing into
// the NEXT batch while the current one is inside its fsync; that overlap
// is where the batching comes from. Structural operations on the log
// (reset during compaction, close) are safe against in-flight batches
// because every waiter in a batch holds its shard lock until released:
// any caller that first acquires all shard locks (Snapshot,
// LoadReplicationSnapshot) or drains the committer (Close) observes an
// idle log.

// commitBatch is one group of records flushed together: the framed bytes
// in enqueue order, the decoded records for post-flush accounting, and the
// notifier every enqueuing writer blocks on.
type commitBatch struct {
	bufs [][]byte
	recs []walRecord
	done chan struct{} // closed once the batch is on disk (or failed)
	err  error         // set before done is closed
}

// enqueueLocked appends one framed record to the open batch, creating it
// if this writer is the first in. Called with walMu held; the caller must
// kick the committer after releasing walMu and then wait on the returned
// batch's done channel.
func (s *Store) enqueueLocked(buf []byte, rec walRecord) *commitBatch {
	b := s.pending
	if b == nil {
		b = &commitBatch{done: make(chan struct{})}
		s.pending = b
	}
	b.bufs = append(b.bufs, buf)
	b.recs = append(b.recs, rec)
	return b
}

// kickCommitter nudges the committer without blocking; a token already in
// the channel guarantees a future flush that will see the new record.
func (s *Store) kickCommitter() {
	select {
	case s.commitKick <- struct{}{}:
	default:
	}
}

// committer is the single goroutine that owns WAL file I/O for logged
// mutations. It exits only after Close asked it to stop and the final
// drain completed.
func (s *Store) committer() {
	defer close(s.committerDone)
	for {
		select {
		case <-s.commitKick:
			// The kick lands the committer in the scheduler's run-next
			// slot, ahead of every writer the last flush just released.
			// Yield once so those writers get to enqueue before the batch
			// is taken — that turns "flush one record per fsync" back into
			// an actual group commit under concurrency, and costs ~100ns
			// when nothing else is runnable.
			runtime.Gosched()
			s.flushPending()
		case <-s.commitStop:
			s.flushPending()
			return
		}
	}
}

// flushPending takes the open batch and commits it: one write, at most one
// fsync, then sequence/replication/watch accounting and the batch-wide
// release.
func (s *Store) flushPending() {
	s.walMu.Lock()
	b := s.pending
	s.pending = nil
	if b == nil {
		s.walMu.Unlock()
		return
	}
	w := s.wal
	total := 0
	for _, buf := range b.bufs {
		total += len(buf)
	}
	out := make([]byte, 0, total)
	for _, buf := range b.bufs {
		out = append(out, buf...)
	}
	s.walMu.Unlock()

	err := w.appendBatch(out)

	s.walMu.Lock()
	if err == nil {
		for _, rec := range b.recs {
			s.lastSeq = rec.Seq
			if s.repl != nil {
				s.repl.push(core.ReplRecord{
					Seq: rec.Seq, Op: rec.Op, Kind: rec.Kind, Key: rec.Key,
					Version: rec.Version, Data: rec.Data,
				})
			}
		}
		s.notifyLocked()
	} else if s.pending == nil {
		// The write was rewound and no writer claimed a later sequence
		// number while the batch was in flight: roll the counter back so
		// the numbers are reused, exactly like a failed single append.
		s.nextSeq -= int64(len(b.recs))
	} else {
		// Writers already hold sequence numbers past the failed batch;
		// reusing them would collide and skipping them would tear the
		// replication stream. Poison the log so writes fail loudly.
		w.poison()
	}
	s.walMu.Unlock()
	b.err = err
	close(b.done)
}
