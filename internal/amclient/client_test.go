package amclient_test

import (
	"bytes"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"umac/internal/am"
	"umac/internal/amclient"
	"umac/internal/core"
	"umac/internal/policy"
)

// fixture is a real AM behind an httptest server plus clients for each
// auth mode.
type fixture struct {
	am  *am.AM
	srv *httptest.Server
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	a := am.New(am.Config{Name: "am", Notifier: &am.Outbox{}})
	srv := httptest.NewServer(a.Handler())
	t.Cleanup(func() {
		srv.Close()
		a.Close()
	})
	a.SetBaseURL(srv.URL)
	return &fixture{am: a, srv: srv}
}

func (f *fixture) as(user core.UserID) *amclient.Client {
	return amclient.New(amclient.Config{BaseURL: f.srv.URL, User: user})
}

// pair establishes a signed channel for host on behalf of user and
// returns a credentialed client plus the pairing ID.
func (f *fixture) pair(t *testing.T, host core.HostID, user core.UserID) (*amclient.Client, string) {
	t.Helper()
	code, err := f.am.ApprovePairing(core.PairingRequest{Host: host, User: user})
	if err != nil {
		t.Fatal(err)
	}
	open := amclient.New(amclient.Config{BaseURL: f.srv.URL})
	pr, err := open.ExchangePairingCode(code, host)
	if err != nil {
		t.Fatal(err)
	}
	return open.WithCredential(pr.PairingID, pr.Secret), pr.PairingID
}

func testPolicy(owner core.UserID, name string) policy.Policy {
	return policy.Policy{
		Owner: owner, Name: name, Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectEveryone}},
			Actions:  []core.Action{core.ActionRead},
		}},
	}
}

func TestManagementSurface(t *testing.T) {
	f := newFixture(t)
	bob := f.as("bob")

	// Policy CRUD.
	created, err := bob.CreatePolicy(testPolicy("bob", "p1"))
	if err != nil || created.ID == "" {
		t.Fatalf("create: %v (%+v)", err, created)
	}
	got, err := bob.GetPolicy(created.ID)
	if err != nil || got.Name != "p1" {
		t.Fatalf("get: %v (%+v)", err, got)
	}
	got.Name = "renamed"
	if err := bob.UpdatePolicy(got); err != nil {
		t.Fatalf("update: %v", err)
	}
	list, err := bob.ListPolicies("", amclient.Page{})
	if err != nil || len(list) != 1 || list[0].Name != "renamed" {
		t.Fatalf("list: %v (%d)", err, len(list))
	}

	// Export / import round-trip into alice's account.
	var buf bytes.Buffer
	if err := bob.ExportPolicies(&buf, "", "json"); err != nil {
		t.Fatalf("export: %v", err)
	}
	alice := f.as("alice")
	n, err := alice.ImportPolicies(bytes.NewReader(buf.Bytes()), "", "json")
	if err != nil || n != 1 {
		t.Fatalf("import: %v (n=%d)", err, n)
	}

	// Groups + custodians.
	members, err := bob.AddGroupMember("", "friends", "alice")
	if err != nil || len(members) != 1 {
		t.Fatalf("group add: %v (%v)", err, members)
	}
	groups, err := bob.Groups("")
	if err != nil || len(groups) != 1 || groups[0] != "friends" {
		t.Fatalf("groups: %v (%v)", err, groups)
	}
	if err := bob.RemoveGroupMember("", "friends", "alice"); err != nil {
		t.Fatalf("group remove: %v", err)
	}
	if _, err := bob.AddCustodian("carol"); err != nil {
		t.Fatalf("custodian add: %v", err)
	}
	custodians, err := bob.Custodians("")
	if err != nil || len(custodians) != 1 {
		t.Fatalf("custodians: %v (%v)", err, custodians)
	}
	// Carol manages bob's policies as custodian via ?owner=.
	carol := f.as("carol")
	if _, err := carol.ListPolicies("bob", amclient.Page{}); err != nil {
		t.Fatalf("custodian list: %v", err)
	}
	if err := bob.RemoveCustodian("carol"); err != nil {
		t.Fatalf("custodian remove: %v", err)
	}

	// Audit: events accrued, summary decodes.
	events, err := bob.Audit(amclient.AuditFilter{}, amclient.Page{Limit: 5})
	if err != nil || len(events) == 0 {
		t.Fatalf("audit: %v (%d)", err, len(events))
	}
	summary, err := bob.AuditSummary("")
	if err != nil || summary.Owner != "bob" {
		t.Fatalf("summary: %v (%+v)", err, summary)
	}

	// Delete.
	if err := bob.DeletePolicy(created.ID); err != nil {
		t.Fatalf("delete: %v", err)
	}
}

func TestSignedProtocolSurface(t *testing.T) {
	f := newFixture(t)
	bob := f.as("bob")
	host, pairingID := f.pair(t, "webpics", "bob")

	// Protect a realm over the signed channel, link an everyone-read
	// policy, then decide.
	if _, err := host.Protect(core.ProtectRequest{PairingID: pairingID, Realm: "travel"}); err != nil {
		t.Fatalf("protect: %v", err)
	}
	pol, err := bob.CreatePolicy(testPolicy("bob", "readers"))
	if err != nil {
		t.Fatal(err)
	}
	if err := bob.LinkGeneral("", "travel", pol.ID); err != nil {
		t.Fatalf("link: %v", err)
	}

	open := amclient.New(amclient.Config{BaseURL: f.srv.URL})
	tr, err := open.RequestToken(core.TokenRequest{
		Requester: "r", Subject: "alice", Host: "webpics", Realm: "travel",
		Resource: "x", Action: core.ActionRead,
	})
	if err != nil || tr.Token == "" {
		t.Fatalf("token: %v (%+v)", err, tr)
	}
	dec, err := host.Decide(core.DecisionQuery{
		PairingID: pairingID, Host: "webpics", Realm: "travel",
		Resource: "x", Action: core.ActionRead, Token: tr.Token,
	})
	if err != nil || !dec.Permit() {
		t.Fatalf("decide: %v (%+v)", err, dec)
	}
	batch, err := host.DecideBatch(core.BatchDecisionQuery{
		PairingID: pairingID, Host: "webpics", Token: tr.Token,
		Items: []core.BatchDecisionItem{
			{Realm: "travel", Resource: "x", Action: core.ActionRead},
			{Realm: "travel", Resource: "y", Action: core.ActionRead},
		},
	})
	if err != nil || len(batch.Results) != 2 || !batch.Results[0].Permit() {
		t.Fatalf("batch: %v (%+v)", err, batch)
	}

	// Pairing listing + RESTful revoke.
	pairings, err := bob.Pairings("", amclient.Page{})
	if err != nil || len(pairings) != 1 || pairings[0].ID != pairingID {
		t.Fatalf("pairings: %v (%+v)", err, pairings)
	}
	if err := bob.RevokePairing(pairingID); err != nil {
		t.Fatalf("revoke: %v", err)
	}
	// The signed channel dies with the pairing.
	if _, err := host.Decide(core.DecisionQuery{
		PairingID: pairingID, Host: "webpics", Realm: "travel",
		Resource: "x", Action: core.ActionRead, Token: tr.Token,
	}); err == nil {
		t.Fatal("decide succeeded after revocation")
	}
}

// TestErrorTyping asserts the client surfaces structured codes and that
// sentinel unwrapping works across the HTTP hop.
func TestErrorTyping(t *testing.T) {
	f := newFixture(t)
	host, pairingID := f.pair(t, "webpics", "bob")
	if _, err := host.Protect(core.ProtectRequest{PairingID: pairingID, Realm: "travel"}); err != nil {
		t.Fatal(err)
	}

	// Policy deny (no linked policy → deny-biased).
	open := amclient.New(amclient.Config{BaseURL: f.srv.URL})
	_, err := open.RequestToken(core.TokenRequest{
		Requester: "r", Subject: "mallory", Host: "webpics", Realm: "travel",
		Resource: "x", Action: core.ActionWrite,
	})
	var ae *core.APIError
	if !errors.As(err, &ae) || ae.Code != core.CodeAccessDenied {
		t.Fatalf("deny err = %v", err)
	}
	if !errors.Is(err, core.ErrAccessDenied) {
		t.Fatalf("deny does not unwrap to sentinel: %v", err)
	}
	if !strings.Contains(err.Error(), core.CodeAccessDenied) {
		t.Fatalf("error text lacks code: %v", err)
	}

	// Unknown realm.
	_, err = open.RequestToken(core.TokenRequest{
		Requester: "r", Subject: "alice", Host: "webpics", Realm: "ghosts",
		Resource: "x", Action: core.ActionRead,
	})
	if !errors.Is(err, core.ErrUnknownRealm) {
		t.Fatalf("unknown-realm err = %v", err)
	}

	// Unauthenticated management call.
	_, err = amclient.New(amclient.Config{BaseURL: f.srv.URL}).ListPolicies("", amclient.Page{})
	if !errors.As(err, &ae) || ae.Code != core.CodeUnauthenticated || ae.Status != 401 {
		t.Fatalf("unauth err = %v", err)
	}
	if ae.RequestID == "" {
		t.Fatal("error carries no request id")
	}

	// Unknown consent ticket.
	_, err = open.TokenStatus("ticket-none")
	if !errors.As(err, &ae) || ae.Code != core.CodeNotFound {
		t.Fatalf("ticket err = %v", err)
	}
}

// TestLegacyMode pins the client to the pre-v1 alias paths and proves the
// whole flow still works — the compatibility contract for old Hosts.
func TestLegacyMode(t *testing.T) {
	f := newFixture(t)
	bob := amclient.New(amclient.Config{BaseURL: f.srv.URL, User: "bob", Legacy: true})
	created, err := bob.CreatePolicy(testPolicy("bob", "p1"))
	if err != nil {
		t.Fatalf("legacy create: %v", err)
	}
	if _, err := bob.GetPolicy(created.ID); err != nil {
		t.Fatalf("legacy get: %v", err)
	}

	code, _ := f.am.ApprovePairing(core.PairingRequest{Host: "webpics", User: "bob"})
	legacyOpen := amclient.New(amclient.Config{BaseURL: f.srv.URL, Legacy: true})
	pr, err := legacyOpen.ExchangePairingCode(code, "webpics")
	if err != nil {
		t.Fatalf("legacy exchange: %v", err)
	}
	// Legacy revoke uses the POST …/revoke alias.
	if err := bob.RevokePairing(pr.PairingID); err != nil {
		t.Fatalf("legacy revoke: %v", err)
	}
}

// TestPagination drives limit/offset through the client.
func TestPagination(t *testing.T) {
	f := newFixture(t)
	bob := f.as("bob")
	for i := 0; i < 5; i++ {
		if _, err := bob.CreatePolicy(testPolicy("bob", "p")); err != nil {
			t.Fatal(err)
		}
	}
	page, err := bob.ListPolicies("", amclient.Page{Offset: 3, Limit: 10})
	if err != nil || len(page) != 2 {
		t.Fatalf("page: %v (%d)", err, len(page))
	}
	page, err = bob.ListPolicies("", amclient.Page{Limit: 2})
	if err != nil || len(page) != 2 {
		t.Fatalf("limit page: %v (%d)", err, len(page))
	}
}

// TestHealthProbes covers Healthz and Ready against a live AM.
func TestHealthProbes(t *testing.T) {
	f := newFixture(t)
	c := amclient.New(amclient.Config{BaseURL: f.srv.URL})
	h, err := c.Healthz()
	if err != nil || h.Status != "ok" || h.AM != "am" {
		t.Fatalf("healthz: %v (%+v)", err, h)
	}
	ready, err := c.Ready()
	if err != nil || !ready {
		t.Fatalf("ready: %v (%v)", err, ready)
	}
	f.am.SetDraining(true)
	ready, err = c.Ready()
	if err != nil || ready {
		t.Fatalf("draining ready: %v (%v)", err, ready)
	}
}
