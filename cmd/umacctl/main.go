// Command umacctl is the policy-management CLI: it converts between the
// textual policy DSL and the JSON/XML interchange formats (the Section VI
// REST export/import formats), talks to a running AM, and queries the
// consolidated audit view.
//
// Subcommands:
//
//	umacctl parse  -owner bob < policies.umac        DSL → JSON
//	umacctl format < policies.json                   JSON → DSL
//	umacctl export -am URL -user bob [-format xml]   pull policies from an AM
//	umacctl import -am URL -user bob < policies.json push policies to an AM
//	umacctl audit  -am URL -user bob                 consolidated audit summary
//	umacctl migrate-owner -owner bob -from URL -to URL -to-shard NAME \
//	    -repl-secret-file F                          live-move an owner between shards
//	umacctl rebalance -am URL -repl-secret-file F \
//	    -add name=URL[,name=URL...]                  grow the ring onto new shards
//	umacctl drain -am URL -repl-secret-file F -shard NAME   empty a shard, then drop it
//	umacctl rebalance -am URL -repl-secret-file F -status   coordinator progress
//	umacctl rebalance -am URL -repl-secret-file F -abort    stop at the next move boundary
//
// migrate-owner drives the 7-step live migration drill (see
// docs/OPERATIONS.md, "Sharded cluster"): scoped snapshot, import,
// WAL-tail catch-up, ownership flip on both shards, final drain — with
// zero acknowledged-write loss and no decision served from the losing
// shard after cutover.
//
// rebalance and drain drive the bulk coordinator (POST /v1/rebalance):
// they compute the target ring from the node's current one, start the
// checkpointed plan, and poll live progress until it lands. Both are
// resumable — re-running the same command after a coordinator crash
// continues the plan without re-migrating finished owners.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"umac"
	"umac/internal/amclient"
	"umac/internal/core"
	"umac/internal/policy"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "parse":
		cmdParse(os.Args[2:])
	case "format":
		cmdFormat(os.Args[2:])
	case "export":
		cmdExport(os.Args[2:])
	case "import":
		cmdImport(os.Args[2:])
	case "audit":
		cmdAudit(os.Args[2:])
	case "migrate-owner":
		cmdMigrateOwner(os.Args[2:])
	case "rebalance":
		cmdRebalance(os.Args[2:])
	case "drain":
		cmdDrain(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: umacctl <parse|format|export|import|audit|migrate-owner|rebalance|drain> [flags]")
	os.Exit(2)
}

func cmdParse(args []string) {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	owner := fs.String("owner", "", "policy owner")
	fs.Parse(args)
	if *owner == "" {
		log.Fatal("umacctl parse: -owner required")
	}
	src, err := io.ReadAll(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	policies, err := umac.ParsePolicies(umac.UserID(*owner), string(src))
	if err != nil {
		log.Fatal(err)
	}
	if err := policy.Export(os.Stdout, policies, policy.FormatJSON); err != nil {
		log.Fatal(err)
	}
}

func cmdFormat(args []string) {
	fs := flag.NewFlagSet("format", flag.ExitOnError)
	format := fs.String("format", "json", "input format: json|xml")
	fs.Parse(args)
	f, err := policy.ParseFormat(*format)
	if err != nil {
		log.Fatal(err)
	}
	policies, err := policy.Import(os.Stdin, f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(umac.FormatPolicies(policies))
}

// amClient builds the typed AM client acting as user.
func amClient(amURL, user string) *amclient.Client {
	return amclient.New(amclient.Config{BaseURL: amURL, User: core.UserID(user)})
}

func cmdExport(args []string) {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	amURL := fs.String("am", "", "AM base URL")
	user := fs.String("user", "", "acting user")
	format := fs.String("format", "json", "export format: json|xml")
	fs.Parse(args)
	if *amURL == "" || *user == "" {
		log.Fatal("umacctl export: -am and -user required")
	}
	if err := amClient(*amURL, *user).ExportPolicies(os.Stdout, "", *format); err != nil {
		log.Fatalf("umacctl export: %v", err)
	}
}

func cmdImport(args []string) {
	fs := flag.NewFlagSet("import", flag.ExitOnError)
	amURL := fs.String("am", "", "AM base URL")
	user := fs.String("user", "", "acting user")
	format := fs.String("format", "json", "import format: json|xml")
	fs.Parse(args)
	if *amURL == "" || *user == "" {
		log.Fatal("umacctl import: -am and -user required")
	}
	n, err := amClient(*amURL, *user).ImportPolicies(os.Stdin, "", *format)
	if err != nil {
		log.Fatalf("umacctl import: %v", err)
	}
	fmt.Printf("{\"imported\": %d}\n", n)
}

func cmdMigrateOwner(args []string) {
	fs := flag.NewFlagSet("migrate-owner", flag.ExitOnError)
	owner := fs.String("owner", "", "resource owner to migrate")
	from := fs.String("from", "", "losing shard's primary base URL")
	to := fs.String("to", "", "gaining shard's primary base URL")
	toShard := fs.String("to-shard", "", "gaining shard's name (as in the cluster ring)")
	secret := fs.String("repl-secret", "", "shared replication secret (prefer -repl-secret-file)")
	secretF := fs.String("repl-secret-file", "", "file holding the shared replication secret")
	fs.Parse(args)
	if *owner == "" || *from == "" || *to == "" || *toShard == "" {
		log.Fatal("umacctl migrate-owner: -owner, -from, -to and -to-shard required")
	}
	sec := readSecret("migrate-owner", *secret, *secretF)
	src := amclient.New(amclient.Config{BaseURL: *from, ReplSecret: sec})
	dst := amclient.New(amclient.Config{BaseURL: *to, ReplSecret: sec})
	rep, err := amclient.MigrateOwner(src, dst, core.UserID(*owner), *toShard,
		func(step int, msg string) { fmt.Fprintf(os.Stderr, "[%d/7] %s\n", step, msg) })
	if err != nil {
		log.Fatalf("umacctl migrate-owner: %v", err)
	}
	out, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Println(string(out))
}

// readSecret resolves the shared replication secret from -repl-secret /
// -repl-secret-file, fatally if neither yields one.
func readSecret(cmd, secret, secretFile string) string {
	sec := secret
	if secretFile != "" {
		data, err := os.ReadFile(secretFile)
		if err != nil {
			log.Fatalf("umacctl %s: read -repl-secret-file: %v", cmd, err)
		}
		sec = strings.TrimSpace(string(data))
	}
	if sec == "" {
		log.Fatalf("umacctl %s: a replication secret is required (-repl-secret-file)", cmd)
	}
	return sec
}

// adminClient builds a repl-authed client for coordinator operations.
func adminClient(amURL, secret string) *amclient.Client {
	return amclient.New(amclient.Config{BaseURL: amURL, ReplSecret: secret})
}

// watchRebalance polls the coordinator until the plan reaches a terminal
// state, printing progress lines, and exits non-zero on failure.
func watchRebalance(cl *amclient.Client, interval time.Duration) {
	var last string
	for {
		st, err := cl.RebalanceStatus()
		if err != nil {
			log.Fatalf("umacctl rebalance: status poll: %v", err)
		}
		line := fmt.Sprintf("ring v%d %s: %d/%d moved, %d remaining", st.RingVersion, st.State, st.Done, st.Total, st.Remaining)
		if st.Moving != "" {
			line += fmt.Sprintf(" (moving %s)", st.Moving)
		}
		if line != last {
			fmt.Fprintln(os.Stderr, line)
			last = line
		}
		switch st.State {
		case core.RebalanceDone, core.RebalanceAborted:
			out, _ := json.MarshalIndent(st, "", "  ")
			fmt.Println(string(out))
			return
		case core.RebalanceFailed:
			log.Fatalf("umacctl rebalance: plan failed: %s", st.Error)
		}
		time.Sleep(interval)
	}
}

func cmdRebalance(args []string) {
	fs := flag.NewFlagSet("rebalance", flag.ExitOnError)
	amURL := fs.String("am", "", "coordinator node's base URL")
	secret := fs.String("repl-secret", "", "shared replication secret (prefer -repl-secret-file)")
	secretF := fs.String("repl-secret-file", "", "file holding the shared replication secret")
	add := fs.String("add", "", "shards to add: name=primaryURL[,name=primaryURL...]")
	status := fs.Bool("status", false, "print coordinator progress and exit")
	abort := fs.Bool("abort", false, "stop the running plan at the next move boundary")
	interval := fs.Duration("interval", time.Second, "progress poll interval")
	fs.Parse(args)
	if *amURL == "" {
		log.Fatal("umacctl rebalance: -am required")
	}
	cl := adminClient(*amURL, readSecret("rebalance", *secret, *secretF))
	switch {
	case *status:
		st, err := cl.RebalanceStatus()
		if err != nil {
			log.Fatalf("umacctl rebalance: %v", err)
		}
		out, _ := json.MarshalIndent(st, "", "  ")
		fmt.Println(string(out))
	case *abort:
		st, err := cl.RebalanceAbort()
		if err != nil {
			log.Fatalf("umacctl rebalance: %v", err)
		}
		out, _ := json.MarshalIndent(st, "", "  ")
		fmt.Println(string(out))
	case *add != "":
		info, err := cl.ClusterInfo()
		if err != nil {
			log.Fatalf("umacctl rebalance: fetch current ring: %v", err)
		}
		target := core.RingState{
			Version: info.RingVersion + 1, Vnodes: info.Vnodes,
			Shards: info.Shards, Draining: info.Draining,
		}
		for _, spec := range strings.Split(*add, ",") {
			name, url, ok := strings.Cut(strings.TrimSpace(spec), "=")
			if !ok || name == "" || url == "" {
				log.Fatalf("umacctl rebalance: bad -add entry %q, want name=primaryURL", spec)
			}
			target.Shards = append(target.Shards, core.ShardInfo{
				Name: name, Primary: url, Endpoints: []string{url},
			})
		}
		if _, err := cl.RebalanceStart(core.RebalanceRequest{Target: target}); err != nil {
			log.Fatalf("umacctl rebalance: %v", err)
		}
		watchRebalance(cl, *interval)
	default:
		log.Fatal("umacctl rebalance: one of -add, -status or -abort required (use drain to empty a shard)")
	}
}

func cmdDrain(args []string) {
	fs := flag.NewFlagSet("drain", flag.ExitOnError)
	amURL := fs.String("am", "", "coordinator node's base URL (not the draining shard)")
	secret := fs.String("repl-secret", "", "shared replication secret (prefer -repl-secret-file)")
	secretF := fs.String("repl-secret-file", "", "file holding the shared replication secret")
	shard := fs.String("shard", "", "shard name to drain and drop")
	interval := fs.Duration("interval", time.Second, "progress poll interval")
	fs.Parse(args)
	if *amURL == "" || *shard == "" {
		log.Fatal("umacctl drain: -am and -shard required")
	}
	cl := adminClient(*amURL, readSecret("drain", *secret, *secretF))
	info, err := cl.ClusterInfo()
	if err != nil {
		log.Fatalf("umacctl drain: fetch current ring: %v", err)
	}
	found := false
	for _, s := range info.Shards {
		if s.Name == *shard {
			found = true
		}
	}
	if !found {
		log.Fatalf("umacctl drain: shard %q not in the current ring", *shard)
	}
	target := core.RingState{
		Version: info.RingVersion + 1, Vnodes: info.Vnodes,
		Shards: info.Shards, Draining: append(info.Draining, *shard),
	}
	if _, err := cl.RebalanceStart(core.RebalanceRequest{Target: target}); err != nil {
		log.Fatalf("umacctl drain: %v", err)
	}
	watchRebalance(cl, *interval)
}

func cmdAudit(args []string) {
	fs := flag.NewFlagSet("audit", flag.ExitOnError)
	amURL := fs.String("am", "", "AM base URL")
	user := fs.String("user", "", "acting user")
	fs.Parse(args)
	if *amURL == "" || *user == "" {
		log.Fatal("umacctl audit: -am and -user required")
	}
	summary, err := amClient(*amURL, *user).AuditSummary("")
	if err != nil {
		log.Fatalf("umacctl audit: %v", err)
	}
	out, _ := json.MarshalIndent(summary, "", "  ")
	fmt.Println(string(out))
}
