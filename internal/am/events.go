package am

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"umac/internal/core"
	"umac/internal/events"
	"umac/internal/webutil"
)

// This file serves the streaming event control plane: the GET /v1/events
// SSE family over which the AM pushes typed control signals — scoped
// decision-cache invalidation, consent resolution, replication state — to
// subscribed PEPs, Requesters and operators, replacing their polling
// loops. The broker itself lives in internal/events; this file is the
// HTTP skin: authentication per audience, filter construction,
// Last-Event-ID resume, heartbeats, and the gap→resync framing.
//
// Wire format is standard server-sent events. Every event is framed as
//
//	id: <seq>
//	event: <type>
//	data: <core.Event JSON>
//
// with `: hb` comment lines as heartbeats. A resync frame (event type
// "resync") means events were lost before the next frame — the subscriber
// must rebuild state out of band (drop caches, re-poll tickets) before
// trusting the stream again.

// DefaultEventHeartbeat is the SSE heartbeat interval used when
// EventsConfig.Heartbeat is zero: frequent enough that idle connections
// survey typical proxy idle timeouts (30–60s), rare enough to be noise.
const DefaultEventHeartbeat = 15 * time.Second

// EventsConfig sizes the event control plane.
type EventsConfig struct {
	// SubscriberBuffer caps each subscriber's ring buffer; 0 means
	// events.DefaultSubscriberBuffer.
	SubscriberBuffer int
	// ReplayWindow caps the Last-Event-ID resume window; 0 means
	// events.DefaultReplayWindow.
	ReplayWindow int
	// Heartbeat is the SSE comment-frame interval; 0 means
	// DefaultEventHeartbeat.
	Heartbeat time.Duration
}

// withDefaults fills zero fields (buffer sizes stay zero: the broker
// applies its own defaults, keeping one source of truth).
func (c EventsConfig) withDefaults() EventsConfig {
	if c.Heartbeat <= 0 {
		c.Heartbeat = DefaultEventHeartbeat
	}
	return c
}

// replBearerOK reports whether the request carries the shared replication
// secret — the operator credential for the unfiltered event stream.
func (a *AM) replBearerOK(r *http.Request) bool {
	if a.replCfg.Secret == "" {
		return false
	}
	got := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
	return subtle.ConstantTimeCompare([]byte(got), []byte(a.replCfg.Secret)) == 1
}

// parseLastEventID resolves the resume cursor: the Last-Event-ID header
// (set by reconnecting EventSource/amclient streams), falling back to the
// ?last_event_id= query parameter. Absent means live-only (-1).
func parseLastEventID(r *http.Request) (int64, error) {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get(core.ParamLastEventID)
	}
	if raw == "" {
		return -1, nil
	}
	id, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || id < 0 {
		return 0, core.APIErrorf(core.CodeBadRequest,
			"am: Last-Event-ID must be a non-negative integer")
	}
	return id, nil
}

// parseEventTypes resolves the ?types= filter (comma-separated). Empty
// means all types; unknown names are rejected so a typo cannot silently
// subscribe to nothing.
func parseEventTypes(r *http.Request) ([]core.EventType, error) {
	raw := r.URL.Query().Get(core.ParamTypes)
	if raw == "" {
		return nil, nil
	}
	var out []core.EventType
	for _, part := range strings.Split(raw, ",") {
		switch t := core.EventType(strings.TrimSpace(part)); t {
		case core.EventInvalidation, core.EventConsent, core.EventReplication:
			out = append(out, t)
		default:
			return nil, core.APIErrorf(core.CodeBadRequest, "am: unknown event type %q", part)
		}
	}
	return out, nil
}

// handleEvents serves GET /v1/events: the general subscription surface.
// Two credentials are accepted: the replication secret as a bearer token
// grants the unfiltered node-wide stream (operators, dashboards), and a
// browser session restricts owner-scoped events to owners the actor may
// manage (?owner= defaults to the actor). Node-wide replication signals
// reach both audiences.
func (a *AM) handleEvents(w http.ResponseWriter, r *http.Request) {
	types, err := parseEventTypes(r)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	f := events.Filter{Types: types}
	if !a.replBearerOK(r) {
		actor, ok := a.auth.Authenticate(r)
		if !ok {
			webutil.FailCode(w, r, core.CodeUnauthenticated, "am: authentication required")
			return
		}
		owner, err := a.ownerParam(r, actor)
		if err != nil {
			webutil.Fail(w, r, err)
			return
		}
		f.Owner = owner
	}
	a.serveSSE(w, r, f)
}

// handleEventsConsent serves GET /v1/events/consent?ticket=…: the
// requester-facing consent stream. Like GET /v1/token/status, possession
// of the unguessable ticket ID is the capability — no further
// authentication — and the stream delivers exactly that ticket's
// resolution (token included on approval) the moment the owner acts.
func (a *AM) handleEventsConsent(w http.ResponseWriter, r *http.Request) {
	ticket := r.URL.Query().Get(core.ParamTicket)
	if ticket == "" {
		webutil.FailCode(w, r, core.CodeBadRequest, "am: ?ticket= is required")
		return
	}
	a.serveSSE(w, r, events.Filter{
		Types:  []core.EventType{core.EventConsent},
		Ticket: ticket,
	})
}

// handleEventsInvalidation serves GET /v1/events/invalidation: the
// PEP-facing invalidation stream, authenticated by the pairing's HMAC
// channel like every Host API. The subscription is scoped to the
// pairing's owner (application-scoped pairings see every owner, matching
// their delegation).
func (a *AM) handleEventsInvalidation(w http.ResponseWriter, r *http.Request, pairingID string) {
	p, err := a.GetPairing(pairingID)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	f := events.Filter{Types: []core.EventType{core.EventInvalidation}}
	if p.Scope != core.PairingScopeApplication {
		f.Owner = p.User
	}
	a.serveSSE(w, r, f)
}

// serveSSE runs one subscriber's event loop until the client disconnects
// or the AM closes: subscribe (with resume), frame events as SSE,
// heartbeat while idle, surface gaps as resync frames.
func (a *AM) serveSSE(w http.ResponseWriter, r *http.Request, f events.Filter) {
	after, err := parseLastEventID(r)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		webutil.FailCode(w, r, core.CodeInternal, "am: response writer cannot stream")
		return
	}
	sub, gap := a.broker.Subscribe(f, after)
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	// Tell buffering reverse proxies (nginx) to pass frames through.
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	// An opening comment flushes headers through intermediaries before the
	// first real event, so clients observe the connection promptly.
	fmt.Fprintf(w, ": stream am=%s\n\n", a.name)
	if gap {
		// The resume cursor predates the replay window: events were lost
		// before this subscription even started. The marker carries the
		// current head so the client's next resume cursor is valid.
		if writeSSEEvent(w, resyncEvent(a.broker.LastSeq())) != nil {
			return
		}
	}
	fl.Flush()

	hb := a.eventsCfg.Heartbeat
	ctx := r.Context()
	for {
		// Bound each wait by the heartbeat interval: on timeout we emit a
		// comment frame (which also detects dead client connections), on
		// parent cancellation we exit.
		waitCtx, cancel := context.WithTimeout(ctx, hb)
		e, gapped, err := sub.Next(waitCtx)
		cancel()
		switch {
		case err == nil:
			if gapped {
				if writeSSEEvent(w, resyncEvent(e.Seq-1)) != nil {
					return
				}
			}
			if writeSSEEvent(w, e) != nil {
				return
			}
			fl.Flush()
		case ctx.Err() != nil:
			return // client disconnected
		case waitCtx.Err() != nil:
			if _, err := io.WriteString(w, ": hb\n\n"); err != nil {
				return
			}
			fl.Flush()
		default:
			return // broker closed (AM shutting down)
		}
	}
}

// resyncEvent builds the in-band gap marker. seq is the last sequence
// number the hole extends to, so a client that reconnects with it as the
// cursor resumes cleanly after its re-sync.
func resyncEvent(seq int64) core.Event {
	return core.Event{Seq: seq, Type: core.EventResync, Time: time.Now()}
}

// writeSSEEvent frames one event; a write error means the client is gone.
func writeSSEEvent(w io.Writer, e core.Event) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data)
	return err
}
