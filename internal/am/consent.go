package am

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"umac/internal/audit"
	"umac/internal/core"
)

// This file implements the real-time consent extension (Section V.D):
// "an AM may send a request for such consent by sending an e-mail or SMS
// message to a User and will not issue an authorization token to the
// Requester before such consent is received. This, however, requires the
// interaction between a Requester and an Authorization Manager to be
// asynchronous."

// Notifier delivers out-of-band consent requests to users — the e-mail/SMS
// channel of the paper, simulated in-process by Outbox.
type Notifier interface {
	// Notify delivers a message to the user.
	Notify(user core.UserID, subject, body string)
}

// Outbox is an in-memory Notifier recording deliveries, standing in for the
// e-mail/SMS gateway. The zero value is ready to use.
type Outbox struct {
	mu       sync.Mutex
	messages map[core.UserID][]OutboxMessage
	// OnDeliver, when non-nil, is invoked synchronously for each delivery —
	// examples use it to resolve consent "when the user sees the SMS".
	OnDeliver func(user core.UserID, msg OutboxMessage)
}

// OutboxMessage is one delivered notification.
type OutboxMessage struct {
	Time    time.Time `json:"time"`
	Subject string    `json:"subject"`
	Body    string    `json:"body"`
}

// Notify implements Notifier.
func (o *Outbox) Notify(user core.UserID, subject, body string) {
	msg := OutboxMessage{Time: time.Now(), Subject: subject, Body: body}
	o.mu.Lock()
	if o.messages == nil {
		o.messages = make(map[core.UserID][]OutboxMessage)
	}
	o.messages[user] = append(o.messages[user], msg)
	deliver := o.OnDeliver
	o.mu.Unlock()
	if deliver != nil {
		deliver(user, msg)
	}
}

// Messages returns the user's delivered messages in order.
func (o *Outbox) Messages(user core.UserID) []OutboxMessage {
	o.mu.Lock()
	defer o.mu.Unlock()
	msgs := o.messages[user]
	out := make([]OutboxMessage, len(msgs))
	copy(out, msgs)
	return out
}

var _ Notifier = (*Outbox)(nil)

// consentTicket tracks one pending consent decision.
type consentTicket struct {
	ticket    string
	owner     core.UserID
	req       core.TokenRequest
	createdAt time.Time
	resolved  bool
	approved  bool
	token     core.TokenResponse
}

// openConsent creates a ticket, notifies the owner, and returns the ticket
// ID the Requester polls.
func (a *AM) openConsent(req core.TokenRequest, realm Realm) (string, error) {
	ticket := core.NewID("ticket")
	a.mu.Lock()
	a.consents[ticket] = &consentTicket{
		ticket:    ticket,
		owner:     realm.Owner,
		req:       req,
		createdAt: time.Now(),
	}
	a.mu.Unlock()
	a.audit.Append(audit.Event{
		Type: audit.EventConsentRequest, Owner: realm.Owner, Host: req.Host,
		Realm: req.Realm, Resource: req.Resource, Requester: req.Requester,
		Subject: req.Subject, Action: req.Action, Detail: ticket,
	})
	if a.notifier != nil {
		a.notifier.Notify(realm.Owner,
			fmt.Sprintf("Consent requested: %s on %s/%s", req.Action, req.Host, req.Resource),
			fmt.Sprintf("Requester %q (subject %q) asks to %s %s in realm %s. Ticket: %s",
				req.Requester, req.Subject, req.Action, req.Resource, req.Realm, ticket))
	}
	return ticket, nil
}

// PendingConsents lists unresolved tickets awaiting the owner, oldest
// first.
func (a *AM) PendingConsents(owner core.UserID) []core.ConsentStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []core.ConsentStatus
	var tickets []*consentTicket
	for _, t := range a.consents {
		if t.owner == owner && !t.resolved {
			tickets = append(tickets, t)
		}
	}
	sort.Slice(tickets, func(i, j int) bool { return tickets[i].createdAt.Before(tickets[j].createdAt) })
	for _, t := range tickets {
		out = append(out, core.ConsentStatus{Ticket: t.ticket})
	}
	return out
}

// ResolveConsent records the owner's decision. On approval the AM
// re-evaluates the original request with consent granted and mints the
// token for the Requester to collect.
func (a *AM) ResolveConsent(actor core.UserID, ticket string, approve bool) error {
	a.mu.Lock()
	t, ok := a.consents[ticket]
	a.mu.Unlock()
	if !ok {
		return fmt.Errorf("am: unknown consent ticket %s", ticket)
	}
	if !a.CanManage(t.owner, actor) {
		return fmt.Errorf("am: %s may not resolve consents of %s", actor, t.owner)
	}
	release, err := a.gateOwner(t.owner)
	if err != nil {
		return err
	}
	defer release()
	if t.resolved {
		return fmt.Errorf("am: consent ticket %s already resolved", ticket)
	}
	a.audit.Append(audit.Event{
		Type: audit.EventConsentResolved, Owner: t.owner, Host: t.req.Host,
		Realm: t.req.Realm, Resource: t.req.Resource, Requester: t.req.Requester,
		Detail: fmt.Sprintf("%s approve=%v", ticket, approve),
	})
	a.trace(core.PhaseObtainingToken, "user:"+string(actor), "am:"+a.name,
		"consent-resolved", fmt.Sprintf("%s approve=%v", ticket, approve))
	if !approve {
		a.mu.Lock()
		t.resolved = true
		t.approved = false
		a.mu.Unlock()
		a.publishConsent(t.owner, ticket, false, core.TokenResponse{})
		return nil
	}
	realm, err := a.LookupRealm(t.req.Host, t.req.Realm)
	if err != nil {
		return err
	}
	// Re-evaluate with consent granted; other conditions (terms, time
	// windows) must still hold.
	res := a.evaluate(t.req, realm, true)
	if res.Decision != core.DecisionPermit {
		a.mu.Lock()
		t.resolved = true
		t.approved = false
		a.mu.Unlock()
		a.publishConsent(t.owner, ticket, false, core.TokenResponse{})
		return fmt.Errorf("%w: consent given but policy still denies: %s", core.ErrAccessDenied, res.Reason)
	}
	tok, err := a.grantTokenWithConsent(t.req, realm)
	if err != nil {
		return err
	}
	a.mu.Lock()
	t.resolved = true
	t.approved = true
	t.token = tok
	a.mu.Unlock()
	a.publishConsent(t.owner, ticket, true, tok)
	return nil
}

// publishConsent pushes a ticket resolution onto the event control plane,
// so a requester subscribed to GET /v1/events/consent learns the outcome
// the moment the owner acts — no polling round-trip. The event carries
// the minted token directly: ConsentStatus is consume-on-read, and a
// stream subscriber must not have to race the poll endpoint for it.
func (a *AM) publishConsent(owner core.UserID, ticket string, approved bool, tok core.TokenResponse) {
	a.broker.Publish(core.Event{
		Type:   core.EventConsent,
		Owner:  owner,
		Ticket: ticket,
		Consent: &core.ConsentStatus{
			Ticket:    ticket,
			Resolved:  true,
			Approved:  approved,
			Token:     tok.Token,
			ExpiresAt: tok.ExpiresAt,
		},
	})
}

// ConsentStatus reports a ticket's state; Requesters poll this (the
// asynchronous Requester↔AM interaction). Once resolved-approved, the
// response carries the token and the ticket is consumed.
func (a *AM) ConsentStatus(ticket string) (core.ConsentStatus, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	t, ok := a.consents[ticket]
	if !ok {
		return core.ConsentStatus{}, fmt.Errorf("am: unknown consent ticket %s", ticket)
	}
	st := core.ConsentStatus{Ticket: ticket, Resolved: t.resolved, Approved: t.approved}
	if t.resolved && t.approved {
		st.Token = t.token.Token
		st.ExpiresAt = t.token.ExpiresAt
		delete(a.consents, ticket)
	}
	return st, nil
}
