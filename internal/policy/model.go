// Package policy implements the access-control policy model and evaluation
// engine of the Authorization Manager, following Section VI of the paper:
//
//   - users compose general policies that apply to a group of resources
//     (a realm) and specific policies that apply to individual resources;
//   - evaluation checks the general policy first, a general deny is final,
//     and a general permit is refined by the specific policy;
//   - decisions are exactly "permit" or "deny".
//
// Beyond identities and rights, rules support the paper's Section V.D
// extensions as conditions: time windows, required claims (terms such as a
// payment confirmation) and real-time user consent.
package policy

import (
	"encoding/xml"
	"fmt"
	"strings"
	"time"

	"umac/internal/core"
)

// Kind distinguishes the two policy classes of the paper's engine.
type Kind int

// Policy kinds.
const (
	// KindGeneral policies protect a whole realm (group of resources).
	KindGeneral Kind = iota + 1
	// KindSpecific policies refine protection for individual resources.
	KindSpecific
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindGeneral:
		return "general"
	case KindSpecific:
		return "specific"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// MarshalText encodes the kind for JSON/XML.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText decodes the kind from JSON/XML.
func (k *Kind) UnmarshalText(b []byte) error {
	switch string(b) {
	case "general":
		*k = KindGeneral
	case "specific":
		*k = KindSpecific
	default:
		return fmt.Errorf("policy: unknown kind %q", b)
	}
	return nil
}

// Effect is a rule outcome.
type Effect int

// Effects.
const (
	EffectPermit Effect = iota + 1
	EffectDeny
)

// String implements fmt.Stringer.
func (e Effect) String() string {
	switch e {
	case EffectPermit:
		return "permit"
	case EffectDeny:
		return "deny"
	default:
		return fmt.Sprintf("effect(%d)", int(e))
	}
}

// MarshalText encodes the effect for JSON/XML.
func (e Effect) MarshalText() ([]byte, error) { return []byte(e.String()), nil }

// UnmarshalText decodes the effect from JSON/XML.
func (e *Effect) UnmarshalText(b []byte) error {
	switch string(b) {
	case "permit":
		*e = EffectPermit
	case "deny":
		*e = EffectDeny
	default:
		return fmt.Errorf("policy: unknown effect %q", b)
	}
	return nil
}

// Combining selects how a policy's rules combine into one outcome —
// the rule-combining-algorithm dimension of XACML, which the paper plans to
// evaluate in Section VII ("we aim to test applicability of XACML").
type Combining string

// Combining algorithms.
const (
	// CombineDenyOverrides (default): any applicable deny wins, otherwise
	// any satisfied permit wins, otherwise the policy is silent.
	CombineDenyOverrides Combining = "deny-overrides"
	// CombinePermitOverrides: any satisfied permit wins, otherwise any
	// applicable deny wins, otherwise silent.
	CombinePermitOverrides Combining = "permit-overrides"
	// CombineFirstApplicable: rules are evaluated in order; the first rule
	// whose subjects, actions and conditions all apply decides.
	CombineFirstApplicable Combining = "first-applicable"
)

// Policy is a named set of rules owned by a user. Policies are reusable:
// the same policy may be linked to many realms and resources across many
// Hosts (requirement R2).
type Policy struct {
	XMLName xml.Name      `json:"-"          xml:"policy"`
	ID      core.PolicyID `json:"id"         xml:"id,attr"`
	Owner   core.UserID   `json:"owner"      xml:"owner,attr"`
	Name    string        `json:"name"       xml:"name,attr"`
	Kind    Kind          `json:"kind"       xml:"kind,attr"`
	Rules   []Rule        `json:"rules"      xml:"rule"`
	// Combining selects the rule-combining algorithm; empty means
	// CombineDenyOverrides.
	Combining Combining `json:"combining,omitempty" xml:"combining,attr,omitempty"`
	// Description is free-form documentation shown in the AM's policy UI.
	Description string `json:"description,omitempty" xml:"description,omitempty"`
	// CacheTTLSeconds controls how long Hosts may cache decisions derived
	// from this policy (Section V.B.5, user-controlled caching). Zero means
	// the AM default; negative forbids caching.
	CacheTTLSeconds int `json:"cache_ttl_seconds,omitempty" xml:"cache-ttl,attr,omitempty"`
}

// combining returns the effective combining algorithm.
func (p Policy) combining() Combining {
	if p.Combining == "" {
		return CombineDenyOverrides
	}
	return p.Combining
}

// Rule grants or denies a set of actions to a set of subjects, optionally
// under conditions.
type Rule struct {
	Effect   Effect    `json:"effect"   xml:"effect,attr"`
	Subjects []Subject `json:"subjects" xml:"subject"`
	// Actions the rule covers; empty means all actions.
	Actions    []core.Action `json:"actions,omitempty"    xml:"action,omitempty"`
	Conditions []Condition   `json:"conditions,omitempty" xml:"condition,omitempty"`
}

// coversAction reports whether the rule applies to the requested action.
func (r Rule) coversAction(a core.Action) bool {
	if len(r.Actions) == 0 {
		return true
	}
	for _, act := range r.Actions {
		if act == a {
			return true
		}
	}
	return false
}

// SubjectType classifies who a rule matches.
type SubjectType int

// Subject types.
const (
	// SubjectUser matches a single user identity.
	SubjectUser SubjectType = iota + 1
	// SubjectGroup matches members of an owner-defined group — the
	// capability the paper complains is missing from Web apps (S1).
	SubjectGroup
	// SubjectEveryone matches any subject, authenticated or not.
	SubjectEveryone
	// SubjectRequester matches a Requester application identity
	// (e.g. "the gallery service"), independent of the human subject.
	SubjectRequester
	// SubjectOwner matches the policy owner themselves.
	SubjectOwner
)

// Subject is one entry in a rule's subject list. Its textual form is
// "user:alice", "group:friends", "requester:gallery", "everyone", "owner".
type Subject struct {
	Type SubjectType
	Name string
}

// String renders the canonical textual form.
func (s Subject) String() string {
	switch s.Type {
	case SubjectUser:
		return "user:" + s.Name
	case SubjectGroup:
		return "group:" + s.Name
	case SubjectRequester:
		return "requester:" + s.Name
	case SubjectEveryone:
		return "everyone"
	case SubjectOwner:
		return "owner"
	default:
		return fmt.Sprintf("subject(%d):%s", int(s.Type), s.Name)
	}
}

// ParseSubject parses the textual form produced by String.
func ParseSubject(s string) (Subject, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "everyone":
		return Subject{Type: SubjectEveryone}, nil
	case s == "owner":
		return Subject{Type: SubjectOwner}, nil
	case strings.HasPrefix(s, "user:"):
		return subjectWithName(SubjectUser, strings.TrimPrefix(s, "user:"))
	case strings.HasPrefix(s, "group:"):
		return subjectWithName(SubjectGroup, strings.TrimPrefix(s, "group:"))
	case strings.HasPrefix(s, "requester:"):
		return subjectWithName(SubjectRequester, strings.TrimPrefix(s, "requester:"))
	default:
		return Subject{}, fmt.Errorf("policy: cannot parse subject %q", s)
	}
}

func subjectWithName(t SubjectType, name string) (Subject, error) {
	if name == "" {
		return Subject{}, fmt.Errorf("policy: subject type %d requires a name", t)
	}
	return Subject{Type: t, Name: name}, nil
}

// MarshalText encodes the subject in its textual form for JSON/XML.
func (s Subject) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText decodes the textual form.
func (s *Subject) UnmarshalText(b []byte) error {
	parsed, err := ParseSubject(string(b))
	if err != nil {
		return err
	}
	*s = parsed
	return nil
}

// ConditionType classifies rule conditions.
type ConditionType string

// Condition types.
const (
	// CondTimeWindow restricts a rule to [NotBefore, NotAfter].
	CondTimeWindow ConditionType = "time-window"
	// CondRequireClaim requires the Requester to present a claim (a "term"
	// in Section V.D / VII, e.g. a payment confirmation).
	CondRequireClaim ConditionType = "require-claim"
	// CondRequireConsent requires real-time user consent before the AM may
	// issue a token (Section V.D).
	CondRequireConsent ConditionType = "require-consent"
)

// Condition is a guard on a rule. Exactly the fields relevant to its Type
// are set.
type Condition struct {
	Type ConditionType `json:"type" xml:"type,attr"`
	// Time window bounds (CondTimeWindow). Zero values mean unbounded.
	NotBefore time.Time `json:"not_before,omitempty" xml:"not-before,omitempty"`
	NotAfter  time.Time `json:"not_after,omitempty"  xml:"not-after,omitempty"`
	// Claim requirement (CondRequireClaim).
	Claim string `json:"claim,omitempty" xml:"claim,omitempty"`
	// Value, when non-empty, requires the claim to carry this exact value;
	// empty accepts any presented value.
	Value string `json:"value,omitempty" xml:"value,omitempty"`
}

// Validate checks structural well-formedness of the policy.
func (p Policy) Validate() error {
	if p.ID == "" {
		return fmt.Errorf("policy: missing id")
	}
	if p.Owner == "" {
		return fmt.Errorf("policy %s: missing owner", p.ID)
	}
	if p.Kind != KindGeneral && p.Kind != KindSpecific {
		return fmt.Errorf("policy %s: invalid kind %d", p.ID, p.Kind)
	}
	switch p.Combining {
	case "", CombineDenyOverrides, CombinePermitOverrides, CombineFirstApplicable:
	default:
		return fmt.Errorf("policy %s: unknown combining algorithm %q", p.ID, p.Combining)
	}
	if len(p.Rules) == 0 {
		return fmt.Errorf("policy %s: no rules", p.ID)
	}
	for i, r := range p.Rules {
		if r.Effect != EffectPermit && r.Effect != EffectDeny {
			return fmt.Errorf("policy %s rule %d: invalid effect", p.ID, i)
		}
		if len(r.Subjects) == 0 {
			return fmt.Errorf("policy %s rule %d: no subjects", p.ID, i)
		}
		for _, a := range r.Actions {
			if !core.ValidAction(a) {
				return fmt.Errorf("policy %s rule %d: invalid action %q", p.ID, i, a)
			}
		}
		for j, c := range r.Conditions {
			switch c.Type {
			case CondTimeWindow:
				if c.NotBefore.IsZero() && c.NotAfter.IsZero() {
					return fmt.Errorf("policy %s rule %d condition %d: empty time window", p.ID, i, j)
				}
				if !c.NotBefore.IsZero() && !c.NotAfter.IsZero() && c.NotAfter.Before(c.NotBefore) {
					return fmt.Errorf("policy %s rule %d condition %d: window ends before it starts", p.ID, i, j)
				}
			case CondRequireClaim:
				if c.Claim == "" {
					return fmt.Errorf("policy %s rule %d condition %d: require-claim without claim name", p.ID, i, j)
				}
			case CondRequireConsent:
				// no parameters
			default:
				return fmt.Errorf("policy %s rule %d condition %d: unknown type %q", p.ID, i, j, c.Type)
			}
		}
	}
	return nil
}
