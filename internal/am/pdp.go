package am

import (
	"errors"
	"fmt"
	"time"

	"umac/internal/audit"
	"umac/internal/core"
	"umac/internal/policy"
	"umac/internal/token"
)

// This file is the policy decision point (PDP) and token service: the
// Fig. 5 token endpoint and the Fig. 6 decision endpoint.

// IssueToken evaluates a Requester's access request and, on permit, mints
// an authorization token bound to (requester, host, realm) — Fig. 5. The
// outcomes map to the paper's Section V.D extensions:
//
//   - permit              → TokenResponse with the token;
//   - consent required    → TokenResponse with PendingConsent (asynchronous
//     Requester↔AM interaction);
//   - terms unsatisfied   → TokenResponse listing RequiredTerms;
//   - deny                → core.ErrAccessDenied.
func (a *AM) IssueToken(req core.TokenRequest) (core.TokenResponse, error) {
	a.trace(core.PhaseObtainingToken, "requester:"+string(req.Requester), "am:"+a.name,
		"token-request", fmt.Sprintf("%s/%s %s", req.Host, req.Realm, req.Action))
	realm, err := a.LookupRealm(req.Host, req.Realm)
	if err != nil {
		return core.TokenResponse{}, err
	}
	res := a.evaluate(req, realm, false)
	switch {
	case res.Decision == core.DecisionPermit:
		return a.grantToken(req, realm, res)
	case res.RequireConsent:
		ticket, err := a.openConsent(req, realm)
		if err != nil {
			return core.TokenResponse{}, err
		}
		a.trace(core.PhaseObtainingToken, "am:"+a.name, "requester:"+string(req.Requester),
			"consent-pending", ticket)
		return core.TokenResponse{PendingConsent: ticket}, nil
	case len(res.RequiredTerms) > 0:
		a.audit.Append(audit.Event{
			Type: audit.EventTokenRefused, Owner: realm.Owner, Host: req.Host,
			Realm: req.Realm, Resource: req.Resource, Requester: req.Requester,
			Subject: req.Subject, Action: req.Action,
			Detail: fmt.Sprintf("terms required: %v", res.RequiredTerms),
		})
		a.trace(core.PhaseObtainingToken, "am:"+a.name, "requester:"+string(req.Requester),
			"terms-required", fmt.Sprintf("%v", res.RequiredTerms))
		return core.TokenResponse{RequiredTerms: dedupe(res.RequiredTerms)}, nil
	default:
		a.audit.Append(audit.Event{
			Type: audit.EventTokenRefused, Owner: realm.Owner, Host: req.Host,
			Realm: req.Realm, Resource: req.Resource, Requester: req.Requester,
			Subject: req.Subject, Action: req.Action, Detail: res.Reason,
		})
		a.trace(core.PhaseObtainingToken, "am:"+a.name, "requester:"+string(req.Requester),
			"token-refused", res.Reason)
		return core.TokenResponse{}, fmt.Errorf("%w: %s", core.ErrAccessDenied, res.Reason)
	}
}

// grantToken mints the token and records the grant context for decision-
// time re-evaluation.
func (a *AM) grantToken(req core.TokenRequest, realm Realm, res policy.Result) (core.TokenResponse, error) {
	tok, claims, err := a.tokens.Mint(req.Requester, req.Subject, req.Host, req.Realm)
	if err != nil {
		return core.TokenResponse{}, err
	}
	grant := grantRecord{
		Requester: req.Requester,
		Subject:   req.Subject,
		Claims:    req.Claims,
		// ConsentGranted stays false: this is the no-consent-needed path;
		// grantTokenWithConsent handles the consent-approved path.
	}
	if _, err := a.store.Put(kindGrant, claims.ID, grant); err != nil {
		return core.TokenResponse{}, fmt.Errorf("am: persist grant: %w", err)
	}
	a.audit.Append(audit.Event{
		Type: audit.EventTokenIssued, Owner: realm.Owner, Host: req.Host,
		Realm: req.Realm, Resource: req.Resource, Requester: req.Requester,
		Subject: req.Subject, Action: req.Action, Detail: claims.ID,
	})
	a.trace(core.PhaseObtainingToken, "am:"+a.name, "requester:"+string(req.Requester),
		"token-issued", claims.ID)
	return core.TokenResponse{Token: tok, Realm: req.Realm, ExpiresAt: claims.ExpiresAt}, nil
}

// grantTokenWithConsent is grantToken for the consent-approved path; the
// grant records that the owner consented so decision queries re-evaluate
// with ConsentGranted.
func (a *AM) grantTokenWithConsent(req core.TokenRequest, realm Realm) (core.TokenResponse, error) {
	tok, claims, err := a.tokens.Mint(req.Requester, req.Subject, req.Host, req.Realm)
	if err != nil {
		return core.TokenResponse{}, err
	}
	grant := grantRecord{
		Requester:      req.Requester,
		Subject:        req.Subject,
		Claims:         req.Claims,
		ConsentGranted: true,
	}
	if _, err := a.store.Put(kindGrant, claims.ID, grant); err != nil {
		return core.TokenResponse{}, fmt.Errorf("am: persist grant: %w", err)
	}
	a.audit.Append(audit.Event{
		Type: audit.EventTokenIssued, Owner: realm.Owner, Host: req.Host,
		Realm: req.Realm, Resource: req.Resource, Requester: req.Requester,
		Subject: req.Subject, Action: req.Action, Detail: claims.ID + " (consented)",
	})
	return core.TokenResponse{Token: tok, Realm: req.Realm, ExpiresAt: claims.ExpiresAt}, nil
}

// evaluate builds the policy request and runs the two-stage engine.
func (a *AM) evaluate(req core.TokenRequest, realm Realm, consent bool) policy.Result {
	general := a.generalPolicyFor(realm.Owner, req.Realm)
	specific := a.specificPolicyFor(realm.Owner, req.Host, req.Resource)
	preq := policy.Request{
		Subject:        req.Subject,
		Requester:      req.Requester,
		Action:         req.Action,
		Resource:       core.ResourceRef{Host: req.Host, Resource: req.Resource, Realm: req.Realm},
		Realm:          req.Realm,
		Owner:          realm.Owner,
		Claims:         req.Claims,
		ConsentGranted: consent,
	}
	return a.engine.Evaluate(preq, general, specific)
}

// Decide answers a Host's decision query — Fig. 6. The pairingID is the
// authenticated channel identity established by httpsig; the query is
// rejected unless the pairing's Host matches the query's Host.
func (a *AM) Decide(pairingID string, q core.DecisionQuery) (core.DecisionResponse, error) {
	a.trace(core.PhaseObtainingDecision, "host:"+string(q.Host), "am:"+a.name,
		"decision-query", fmt.Sprintf("%s/%s %s", q.Realm, q.Resource, q.Action))
	pairing, err := a.GetPairing(pairingID)
	if err != nil {
		return core.DecisionResponse{}, err
	}
	if pairing.Host != q.Host {
		return core.DecisionResponse{}, fmt.Errorf("am: pairing %s belongs to host %q, query claims %q",
			pairingID, pairing.Host, q.Host)
	}
	realm, err := a.LookupRealm(q.Host, q.Realm)
	if err != nil {
		return core.DecisionResponse{}, err
	}

	deny := func(reason string) core.DecisionResponse {
		a.auditDecision(realm, q, "", core.DecisionDeny, reason)
		return core.DecisionResponse{
			Decision:        core.DecisionDeny.String(),
			CacheTTLSeconds: 0, // denials from token problems are not cacheable
			Reason:          reason,
			TokenProblem:    true,
		}
	}

	claims, err := a.tokens.Validate(q.Token)
	if err != nil {
		if errors.Is(err, core.ErrTokenInvalid) {
			return deny("token invalid: " + err.Error()), nil
		}
		return core.DecisionResponse{}, err
	}
	if err := token.CheckScope(claims, "", q.Host, q.Realm); err != nil {
		return deny("token out of scope: " + err.Error()), nil
	}

	// Recover the grant context (claims presented, consent given) so the
	// re-evaluation reproduces the conditions under which the token was
	// issued.
	var grant grantRecord
	a.store.Get(kindGrant, claims.ID, &grant)

	req := core.TokenRequest{
		Requester: claims.Requester,
		Subject:   claims.Subject,
		Host:      q.Host,
		Realm:     q.Realm,
		Resource:  q.Resource,
		Action:    q.Action,
		Claims:    grant.Claims,
	}
	res := a.evaluate(req, realm, grant.ConsentGranted)
	decision := core.DecisionDeny
	if res.Decision == core.DecisionPermit {
		decision = core.DecisionPermit
	}
	a.auditDecision(realm, q, claims.Requester, decision, res.Reason)
	a.trace(core.PhaseObtainingDecision, "am:"+a.name, "host:"+string(q.Host),
		"decision-response", decision.String())
	return core.DecisionResponse{
		Decision:        decision.String(),
		CacheTTLSeconds: a.cacheTTLSeconds(res),
		Reason:          res.Reason,
	}, nil
}

// cacheTTLSeconds converts an engine result's caching directive into the
// wire form: policy TTL if set, AM default otherwise, 0 if the policy
// forbids caching.
func (a *AM) cacheTTLSeconds(res policy.Result) int {
	switch {
	case res.CacheTTLSeconds < 0:
		return 0
	case res.CacheTTLSeconds > 0:
		return res.CacheTTLSeconds
	default:
		return int(a.cacheTTL / time.Second)
	}
}

func (a *AM) auditDecision(realm Realm, q core.DecisionQuery, requester core.RequesterID, d core.Decision, reason string) {
	a.audit.Append(audit.Event{
		Type: audit.EventDecision, Owner: realm.Owner, Host: q.Host,
		Realm: q.Realm, Resource: q.Resource, Requester: requester,
		Action: q.Action, Decision: d.String(), Detail: reason,
	})
}

func dedupe(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
