package policy

import (
	"testing"
	"time"

	"umac/internal/core"
)

// fixtures

func readRequest(subject core.UserID) Request {
	return Request{
		Subject:   subject,
		Requester: "browser",
		Action:    core.ActionRead,
		Resource:  core.ResourceRef{Host: "webpics", Resource: "photo-1"},
		Realm:     "travel",
		Owner:     "bob",
	}
}

func permitPolicy(id core.PolicyID, kind Kind, subjects []Subject, actions ...core.Action) *Policy {
	return &Policy{
		ID:    id,
		Owner: "bob",
		Name:  string(id),
		Kind:  kind,
		Rules: []Rule{{Effect: EffectPermit, Subjects: subjects, Actions: actions}},
	}
}

func denyPolicy(id core.PolicyID, kind Kind, subjects []Subject, actions ...core.Action) *Policy {
	return &Policy{
		ID:    id,
		Owner: "bob",
		Name:  string(id),
		Kind:  kind,
		Rules: []Rule{{Effect: EffectDeny, Subjects: subjects, Actions: actions}},
	}
}

func alice() []Subject    { return []Subject{{Type: SubjectUser, Name: "alice"}} }
func everyone() []Subject { return []Subject{{Type: SubjectEveryone}} }

func TestNoGeneralPolicyIsUnknown(t *testing.T) {
	e := NewEngine(nil)
	res := e.Evaluate(readRequest("alice"), nil, nil)
	if res.Decision != core.DecisionUnknown {
		t.Fatalf("decision = %v, want unknown", res.Decision)
	}
}

func TestGeneralPermit(t *testing.T) {
	e := NewEngine(nil)
	res := e.Evaluate(readRequest("alice"), permitPolicy("g", KindGeneral, alice()), nil)
	if res.Decision != core.DecisionPermit {
		t.Fatalf("decision = %v (%s)", res.Decision, res.Reason)
	}
	if res.Policy != "g" {
		t.Fatalf("policy = %q", res.Policy)
	}
}

func TestGeneralDenyIsFinal(t *testing.T) {
	// Section VI: "If the decision derived from the general policy is
	// 'deny' then no other policy is processed." A wide-open specific
	// policy must not rescue the request.
	e := NewEngine(nil)
	general := denyPolicy("g", KindGeneral, alice())
	specific := permitPolicy("s", KindSpecific, everyone())
	res := e.Evaluate(readRequest("alice"), general, specific)
	if res.Decision != core.DecisionDeny {
		t.Fatalf("decision = %v, want deny", res.Decision)
	}
	if res.Policy != "g" {
		t.Fatalf("deciding policy = %q, want g", res.Policy)
	}
}

func TestGeneralSilentIsDeny(t *testing.T) {
	// A general policy that does not speak to the subject produces deny
	// (deny-biased), and the specific policy is never consulted.
	e := NewEngine(nil)
	general := permitPolicy("g", KindGeneral, alice())
	specific := permitPolicy("s", KindSpecific, everyone())
	res := e.Evaluate(readRequest("mallory"), general, specific)
	if res.Decision != core.DecisionDeny {
		t.Fatalf("decision = %v, want deny", res.Decision)
	}
}

func TestSpecificRefinesGeneralPermit(t *testing.T) {
	e := NewEngine(nil)
	general := permitPolicy("g", KindGeneral, everyone())
	specific := denyPolicy("s", KindSpecific, alice())
	res := e.Evaluate(readRequest("alice"), general, specific)
	if res.Decision != core.DecisionDeny {
		t.Fatalf("decision = %v, want deny (specific refinement)", res.Decision)
	}
	if res.Policy != "s" {
		t.Fatalf("deciding policy = %q, want s", res.Policy)
	}
}

func TestSpecificSilentKeepsGeneralPermit(t *testing.T) {
	// The paper's own composition example: a general read-only policy plus
	// a specific policy permitting "write" on a subset. A read request hits
	// the general permit; the specific (write-only) policy is silent about
	// reads and must not flip the outcome.
	e := NewEngine(nil)
	general := permitPolicy("g", KindGeneral, everyone(), core.ActionRead)
	specific := permitPolicy("s", KindSpecific, alice(), core.ActionWrite)

	res := e.Evaluate(readRequest("chris"), general, specific)
	if res.Decision != core.DecisionPermit {
		t.Fatalf("read by chris: %v (%s)", res.Decision, res.Reason)
	}

	// And alice can write: the general policy is read-only so a write
	// request finds no general permit → deny. This documents that in the
	// two-stage model the general policy must cover every action it wants
	// to allow refinement for.
	writeReq := readRequest("alice")
	writeReq.Action = core.ActionWrite
	res = e.Evaluate(writeReq, general, specific)
	if res.Decision != core.DecisionDeny {
		t.Fatalf("write blocked by general stage, got %v", res.Decision)
	}

	// With a general policy covering read+write for everyone and a
	// specific write-permit for alice only, writes by others still pass
	// the specific stage only if the specific policy is silent for them —
	// deny-biased refinement needs an explicit deny rule. Check alice's
	// write permits via the specific rule.
	general2 := permitPolicy("g2", KindGeneral, everyone(), core.ActionRead, core.ActionWrite)
	res = e.Evaluate(writeReq, general2, specific)
	if res.Decision != core.DecisionPermit {
		t.Fatalf("alice write: %v (%s)", res.Decision, res.Reason)
	}
	if res.Policy != "s" {
		t.Fatalf("deciding policy = %q", res.Policy)
	}
}

func TestDenyOverridesWithinPolicy(t *testing.T) {
	e := NewEngine(nil)
	p := &Policy{
		ID: "p", Owner: "bob", Kind: KindGeneral,
		Rules: []Rule{
			{Effect: EffectPermit, Subjects: everyone()},
			{Effect: EffectDeny, Subjects: alice()},
		},
	}
	if res := e.Evaluate(readRequest("alice"), p, nil); res.Decision != core.DecisionDeny {
		t.Fatalf("alice: %v, want deny (deny overrides)", res.Decision)
	}
	if res := e.Evaluate(readRequest("chris"), p, nil); res.Decision != core.DecisionPermit {
		t.Fatalf("chris: %v, want permit", res.Decision)
	}
}

func TestActionScoping(t *testing.T) {
	e := NewEngine(nil)
	p := permitPolicy("g", KindGeneral, everyone(), core.ActionRead, core.ActionList)
	req := readRequest("alice")
	for action, want := range map[core.Action]core.Decision{
		core.ActionRead:   core.DecisionPermit,
		core.ActionList:   core.DecisionPermit,
		core.ActionWrite:  core.DecisionDeny,
		core.ActionDelete: core.DecisionDeny,
	} {
		req.Action = action
		if res := e.Evaluate(req, p, nil); res.Decision != want {
			t.Errorf("action %s: %v, want %v", action, res.Decision, want)
		}
	}
}

func TestGroupSubjects(t *testing.T) {
	var dir Directory
	dir.Add("bob", "friends", "alice")
	dir.Add("bob", "friends", "chris")
	e := NewEngine(&dir)
	p := permitPolicy("g", KindGeneral, []Subject{{Type: SubjectGroup, Name: "friends"}})

	if res := e.Evaluate(readRequest("alice"), p, nil); res.Decision != core.DecisionPermit {
		t.Fatalf("friend alice: %v", res.Decision)
	}
	if res := e.Evaluate(readRequest("mallory"), p, nil); res.Decision != core.DecisionDeny {
		t.Fatalf("non-friend mallory: %v", res.Decision)
	}

	// Groups are per-owner: alice's "friends" group must not leak into
	// bob's policies.
	dir.Add("alice", "friends", "mallory")
	if res := e.Evaluate(readRequest("mallory"), p, nil); res.Decision != core.DecisionDeny {
		t.Fatalf("cross-owner group leak: %v", res.Decision)
	}
}

func TestGroupWithNilResolver(t *testing.T) {
	e := NewEngine(nil)
	p := permitPolicy("g", KindGeneral, []Subject{{Type: SubjectGroup, Name: "friends"}})
	if res := e.Evaluate(readRequest("alice"), p, nil); res.Decision != core.DecisionDeny {
		t.Fatalf("nil resolver: %v, want deny", res.Decision)
	}
}

func TestOwnerSubject(t *testing.T) {
	e := NewEngine(nil)
	p := permitPolicy("g", KindGeneral, []Subject{{Type: SubjectOwner}})
	if res := e.Evaluate(readRequest("bob"), p, nil); res.Decision != core.DecisionPermit {
		t.Fatalf("owner: %v", res.Decision)
	}
	if res := e.Evaluate(readRequest("alice"), p, nil); res.Decision != core.DecisionDeny {
		t.Fatalf("non-owner: %v", res.Decision)
	}
}

func TestRequesterSubject(t *testing.T) {
	e := NewEngine(nil)
	p := permitPolicy("g", KindGeneral, []Subject{{Type: SubjectRequester, Name: "gallery"}})
	req := readRequest("") // no human subject: service-to-service
	req.Requester = "gallery"
	if res := e.Evaluate(req, p, nil); res.Decision != core.DecisionPermit {
		t.Fatalf("gallery requester: %v", res.Decision)
	}
	req.Requester = "storage"
	if res := e.Evaluate(req, p, nil); res.Decision != core.DecisionDeny {
		t.Fatalf("other requester: %v", res.Decision)
	}
}

func TestAnonymousSubjectNeverMatchesUserRules(t *testing.T) {
	e := NewEngine(nil)
	p := permitPolicy("g", KindGeneral, []Subject{{Type: SubjectUser, Name: ""}})
	if res := e.Evaluate(readRequest(""), p, nil); res.Decision != core.DecisionDeny {
		t.Fatalf("anonymous matched empty user rule: %v", res.Decision)
	}
	// But "everyone" does include anonymous.
	p2 := permitPolicy("g2", KindGeneral, everyone())
	if res := e.Evaluate(readRequest(""), p2, nil); res.Decision != core.DecisionPermit {
		t.Fatalf("everyone should include anonymous: %v", res.Decision)
	}
}

func TestTimeWindowCondition(t *testing.T) {
	e := NewEngine(nil)
	now := time.Date(2026, 6, 11, 12, 0, 0, 0, time.UTC)
	p := &Policy{
		ID: "g", Owner: "bob", Kind: KindGeneral,
		Rules: []Rule{{
			Effect:   EffectPermit,
			Subjects: everyone(),
			Conditions: []Condition{{
				Type:      CondTimeWindow,
				NotBefore: now.Add(-time.Hour),
				NotAfter:  now.Add(time.Hour),
			}},
		}},
	}
	req := readRequest("alice")
	req.Time = now
	if res := e.Evaluate(req, p, nil); res.Decision != core.DecisionPermit {
		t.Fatalf("inside window: %v", res.Decision)
	}
	req.Time = now.Add(2 * time.Hour)
	if res := e.Evaluate(req, p, nil); res.Decision != core.DecisionDeny {
		t.Fatalf("after window: %v", res.Decision)
	}
	req.Time = now.Add(-2 * time.Hour)
	if res := e.Evaluate(req, p, nil); res.Decision != core.DecisionDeny {
		t.Fatalf("before window: %v", res.Decision)
	}
}

func TestTimeWindowOnDenyRuleGuards(t *testing.T) {
	// An expired deny window means the deny does not apply.
	e := NewEngine(nil)
	now := time.Date(2026, 6, 11, 12, 0, 0, 0, time.UTC)
	p := &Policy{
		ID: "g", Owner: "bob", Kind: KindGeneral,
		Rules: []Rule{
			{Effect: EffectPermit, Subjects: everyone()},
			{
				Effect:   EffectDeny,
				Subjects: everyone(),
				Conditions: []Condition{{
					Type:     CondTimeWindow,
					NotAfter: now.Add(-time.Hour), // deny expired an hour ago
				}},
			},
		},
	}
	req := readRequest("alice")
	req.Time = now
	if res := e.Evaluate(req, p, nil); res.Decision != core.DecisionPermit {
		t.Fatalf("expired deny still applied: %v", res.Decision)
	}
}

func TestRequireClaimCondition(t *testing.T) {
	e := NewEngine(nil)
	p := &Policy{
		ID: "g", Owner: "bob", Kind: KindGeneral,
		Rules: []Rule{{
			Effect:     EffectPermit,
			Subjects:   everyone(),
			Conditions: []Condition{{Type: CondRequireClaim, Claim: "payment"}},
		}},
	}
	req := readRequest("alice")
	res := e.Evaluate(req, p, nil)
	if res.Decision != core.DecisionUnknown && res.Decision != core.DecisionDeny {
		t.Fatalf("missing claim must not permit: %v", res.Decision)
	}
	if len(res.RequiredTerms) != 1 || res.RequiredTerms[0] != "payment" {
		t.Fatalf("RequiredTerms = %v", res.RequiredTerms)
	}

	req.Claims = map[string]string{"payment": "rcpt-77"}
	res = e.Evaluate(req, p, nil)
	if res.Decision != core.DecisionPermit {
		t.Fatalf("with claim: %v (%s)", res.Decision, res.Reason)
	}
	if len(res.RequiredTerms) != 0 {
		t.Fatalf("terms should clear on permit: %v", res.RequiredTerms)
	}
}

func TestRequireClaimExactValue(t *testing.T) {
	e := NewEngine(nil)
	p := &Policy{
		ID: "g", Owner: "bob", Kind: KindGeneral,
		Rules: []Rule{{
			Effect:     EffectPermit,
			Subjects:   everyone(),
			Conditions: []Condition{{Type: CondRequireClaim, Claim: "tier", Value: "premium"}},
		}},
	}
	req := readRequest("alice")
	req.Claims = map[string]string{"tier": "basic"}
	if res := e.Evaluate(req, p, nil); res.Decision == core.DecisionPermit {
		t.Fatal("wrong claim value permitted")
	}
	req.Claims["tier"] = "premium"
	if res := e.Evaluate(req, p, nil); res.Decision != core.DecisionPermit {
		t.Fatalf("correct claim value: %v", res.Decision)
	}
}

func TestRequireConsentCondition(t *testing.T) {
	e := NewEngine(nil)
	p := &Policy{
		ID: "g", Owner: "bob", Kind: KindGeneral,
		Rules: []Rule{{
			Effect:     EffectPermit,
			Subjects:   everyone(),
			Conditions: []Condition{{Type: CondRequireConsent}},
		}},
	}
	req := readRequest("alice")
	res := e.Evaluate(req, p, nil)
	if res.Decision == core.DecisionPermit {
		t.Fatal("permitted without consent")
	}
	if !res.RequireConsent {
		t.Fatal("RequireConsent not flagged")
	}
	req.ConsentGranted = true
	res = e.Evaluate(req, p, nil)
	if res.Decision != core.DecisionPermit {
		t.Fatalf("with consent: %v", res.Decision)
	}
	if res.RequireConsent {
		t.Fatal("consent obligation should clear on permit")
	}
}

func TestObligationsPropagateThroughSpecificStage(t *testing.T) {
	// General stage permits but demands consent indirectly? No — a general
	// permit with unmet consent is not a permit, so evaluation stops there.
	// Here the general permits cleanly and the *specific* policy demands a
	// claim: the obligation must surface in the final result.
	e := NewEngine(nil)
	general := permitPolicy("g", KindGeneral, everyone())
	specific := &Policy{
		ID: "s", Owner: "bob", Kind: KindSpecific,
		Rules: []Rule{{
			Effect:     EffectPermit,
			Subjects:   everyone(),
			Conditions: []Condition{{Type: CondRequireClaim, Claim: "payment"}},
		}, {
			// A deny rule for a different action keeps the policy
			// non-silent overall but must not affect reads.
			Effect:   EffectDeny,
			Subjects: everyone(),
			Actions:  []core.Action{core.ActionDelete},
		}},
	}
	res := e.Evaluate(readRequest("alice"), general, specific)
	if res.Decision == core.DecisionPermit {
		t.Fatalf("permitted without payment claim")
	}
	if len(res.RequiredTerms) == 0 {
		t.Fatalf("terms not propagated: %+v", res)
	}
}

func TestUnknownConditionTypeFailsClosed(t *testing.T) {
	e := NewEngine(nil)
	p := &Policy{
		ID: "g", Owner: "bob", Kind: KindGeneral,
		Rules: []Rule{{
			Effect:     EffectPermit,
			Subjects:   everyone(),
			Conditions: []Condition{{Type: "geo-fence"}},
		}},
	}
	if res := e.Evaluate(readRequest("alice"), p, nil); res.Decision == core.DecisionPermit {
		t.Fatal("unknown condition type permitted")
	}
}

func TestCacheTTLFromPolicy(t *testing.T) {
	e := NewEngine(nil)
	general := permitPolicy("g", KindGeneral, everyone())
	general.CacheTTLSeconds = 120
	res := e.Evaluate(readRequest("alice"), general, nil)
	if res.CacheTTLSeconds != 120 {
		t.Fatalf("ttl = %d", res.CacheTTLSeconds)
	}

	// Specific decision inherits general TTL when it has none of its own.
	specific := permitPolicy("s", KindSpecific, alice())
	res = e.Evaluate(readRequest("alice"), general, specific)
	if res.CacheTTLSeconds != 120 {
		t.Fatalf("inherited ttl = %d", res.CacheTTLSeconds)
	}

	// Specific TTL wins when set.
	specific.CacheTTLSeconds = -1
	res = e.Evaluate(readRequest("alice"), general, specific)
	if res.CacheTTLSeconds != -1 {
		t.Fatalf("specific ttl = %d", res.CacheTTLSeconds)
	}
}
