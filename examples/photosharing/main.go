// Photosharing reproduces the paper's motivating scenario (Section II):
// Bob documents trips with photos on WebPics, videos on WebVideos and trip
// reports on WebDocs, and shares them with Alice and Chris.
//
// Without UMAC Bob would maintain separate ACLs in three incompatible
// applications (shortcomings S1-S4). With UMAC he composes ONE policy and
// ONE friends group at his AM; all three Hosts enforce it, and he audits
// everything in one place.
//
// Run with: go run ./examples/photosharing
package main

import (
	"fmt"
	"log"

	"umac"
	"umac/internal/core"
	"umac/internal/sim"
)

func main() {
	world := sim.NewWorld()
	defer world.Close()

	// Three independent Web 2.0 applications, each hosting part of Bob's
	// content. Realm "trips" groups the trip content on every Host.
	webpics := world.AddHost("webpics")
	webvideos := world.AddHost("webvideos")
	webdocs := world.AddHost("webdocs")
	webpics.AddResource("bob", "trips", "kenya-2026/lion.jpg", []byte("photo: lion at dawn"))
	webpics.AddResource("bob", "trips", "kenya-2026/camp.jpg", []byte("photo: camp"))
	webvideos.AddResource("bob", "trips", "kenya-2026/safari.mp4", []byte("video: safari drive"))
	webdocs.AddResource("bob", "trips", "kenya-2026/report.md", []byte("# Kenya 2026\nDay 1 …"))

	// Bob delegates access control from all three Hosts to his single AM
	// (Fig. 3, three times) and registers the realm at each (Fig. 4).
	bob := sim.NewUserAgent("bob")
	for _, h := range []*sim.SimpleHost{webpics, webvideos, webdocs} {
		if err := bob.PairHost(h, world.AMServer.URL); err != nil {
			log.Fatal(err)
		}
		if err := h.Enforcer.Protect("bob", "trips", nil, ""); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("Bob delegated WebPics, WebVideos and WebDocs to one AM")

	// ONE policy in Bob's preferred language, ONE group — addressing S1
	// (groups the apps lack), S2 (one language), S3 (one tool).
	policies, err := umac.ParsePolicies("bob", `
policy "share-trips" general {
  permit group:friends, owner read, list
}`)
	if err != nil {
		log.Fatal(err)
	}
	p, err := world.AM.CreatePolicy("bob", policies[0])
	if err != nil {
		log.Fatal(err)
	}
	if err := world.AM.LinkGeneral("bob", "trips", p.ID); err != nil {
		log.Fatal(err)
	}
	for _, friend := range []umac.UserID{"alice", "chris"} {
		if err := world.AM.AddGroupMember("bob", "bob", "friends", friend); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("Bob composed ONE policy and ONE friends group covering all three apps")

	// Alice and Chris browse everything across the three applications.
	resources := map[*sim.SimpleHost][]umac.ResourceID{
		webpics:   {"kenya-2026/lion.jpg", "kenya-2026/camp.jpg"},
		webvideos: {"kenya-2026/safari.mp4"},
		webdocs:   {"kenya-2026/report.md"},
	}
	for _, friend := range []umac.UserID{"alice", "chris"} {
		client := umac.NewRequester(umac.RequesterConfig{
			ID: umac.RequesterID(friend + "-browser"), Subject: friend,
		})
		n := 0
		for h, ids := range resources {
			for _, id := range ids {
				if _, err := client.Fetch(h.ResourceURL(id), umac.ActionRead); err != nil {
					log.Fatalf("%s reading %s at %s: %v", friend, id, h.ID, err)
				}
				n++
			}
		}
		fmt.Printf("%s read %d resources across 3 applications\n", friend, n)
	}

	// Later: Bob shares with one more person — one group change, zero
	// visits to the three applications (the Section II pain point).
	if err := world.AM.AddGroupMember("bob", "bob", "friends", "dana"); err != nil {
		log.Fatal(err)
	}
	dana := umac.NewRequester(umac.RequesterConfig{ID: "dana-browser", Subject: "dana"})
	if _, err := dana.Fetch(webdocs.ResourceURL("kenya-2026/report.md"), umac.ActionRead); err != nil {
		log.Fatal(err)
	}
	fmt.Println("dana added with a single group change — no per-app reconfiguration")

	// A stranger is denied everywhere, decided centrally.
	mallory := umac.NewRequester(umac.RequesterConfig{ID: "mallory-app", Subject: "mallory"})
	denied := 0
	for h, ids := range resources {
		for _, id := range ids {
			if _, err := mallory.Fetch(h.ResourceURL(id), umac.ActionRead); err != nil {
				denied++
			}
		}
	}
	fmt.Printf("mallory denied %d/4 resources\n", denied)

	// S4/R4: the consolidated audit view — one query, all Hosts.
	s := world.AM.Audit().Summarize("bob")
	fmt.Printf("\nConsolidated audit for bob (single query at the AM):\n")
	fmt.Printf("  hosts: %v\n", s.Hosts)
	fmt.Printf("  decisions: %d permit, %d deny, by %d distinct requesters\n",
		s.PermitCount, s.DenyCount, s.RequesterCount)
	for host, n := range s.DecisionsByHost {
		fmt.Printf("    %-10s %d decisions\n", host, n)
	}
	_ = core.ActionRead
}
