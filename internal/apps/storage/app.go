package storage

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"umac/internal/baseline/localacl"
	"umac/internal/core"
	"umac/internal/identity"
	"umac/internal/pep"
	"umac/internal/requester"
	"umac/internal/store"
	"umac/internal/webutil"
)

// App is the online storage service. It serves each user's FS over HTTP,
// enforcing access either with its built-in ACL matrix or, for owners who
// have delegated, through the UMAC enforcer.
type App struct {
	HostID   core.HostID
	Enforcer *pep.Enforcer
	// ACL is the built-in access control used for non-delegated owners.
	ACL *localacl.Matrix
	// Auth identifies the browsing user for owner-operations and the
	// built-in ACL path.
	Auth identity.Authenticator

	mu    sync.RWMutex
	trees map[core.UserID]*FS
}

// Config configures the storage App.
type Config struct {
	HostID core.HostID
	// Auth identifies browser users; nil means identity.HeaderAuth{}.
	Auth identity.Authenticator
	// Tracer records protocol events.
	Tracer *core.Tracer
	// PairingStore, when non-nil, persists AM pairings across restarts
	// (pass a WAL-backed store for crash durability).
	PairingStore *store.Store
}

// New constructs the storage application.
func New(cfg Config) *App {
	auth := cfg.Auth
	if auth == nil {
		auth = identity.HeaderAuth{}
	}
	hostID := cfg.HostID
	if hostID == "" {
		hostID = "storage"
	}
	return &App{
		HostID: hostID,
		Enforcer: pep.New(pep.Config{
			Host: hostID, Name: "Online Storage", Tracer: cfg.Tracer,
			Store: cfg.PairingStore,
		}),
		ACL:   &localacl.Matrix{},
		Auth:  auth,
		trees: make(map[core.UserID]*FS),
	}
}

// Tree returns (creating if needed) the owner's file tree.
func (a *App) Tree(owner core.UserID) *FS {
	a.mu.Lock()
	defer a.mu.Unlock()
	t, ok := a.trees[owner]
	if !ok {
		t = &FS{}
		a.trees[owner] = t
	}
	return t
}

// authorize enforces access to owner's path for the given action,
// dispatching on whether the owner delegated to an AM. It writes the
// protocol response and returns false when the caller must not proceed.
func (a *App) authorize(w http.ResponseWriter, r *http.Request, owner core.UserID, path string, action core.Action) bool {
	realm, err := RealmOf(path)
	if err != nil {
		webutil.WriteError(w, http.StatusBadRequest, err)
		return false
	}
	if a.Enforcer.Delegated(owner) {
		return a.Enforcer.Require(w, r, owner, realm, core.ResourceID(path), action)
	}
	// Built-in mode: identify the subject locally and consult the matrix.
	subject, _ := a.Auth.Authenticate(r)
	if a.ACL.Check(owner, core.ResourceID(path), subject, action) {
		return true
	}
	webutil.WriteErrorf(w, http.StatusForbidden, "storage: %s may not %s %s", subject, action, path)
	return false
}

// Handler returns the application's HTTP surface:
//
//	GET    /files/{owner}/{path...}   download (read)
//	PUT    /files/{owner}/{path...}   upload (write; owner or granted)
//	DELETE /files/{owner}/{path...}   delete
//	GET    /dirs/{owner}/{path...}    directory listing (list)
//	POST   /backup                    act as Requester: copy a remote
//	                                  resource into the tree (Section VI:
//	                                  "it may act as a backup service for
//	                                  online photo albums")
//	/umac/pair/callback               pairing leg (Fig. 3)
func (a *App) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/umac/pair/callback", a.Enforcer.HandlePairCallback)
	mux.HandleFunc("POST /umac/invalidate", a.Enforcer.HandleInvalidate)

	mux.HandleFunc("GET /files/{owner}/{path...}", func(w http.ResponseWriter, r *http.Request) {
		owner := core.UserID(r.PathValue("owner"))
		path := "/" + r.PathValue("path")
		if !a.authorize(w, r, owner, path, core.ActionRead) {
			return
		}
		content, err := a.Tree(owner).Get(path)
		if err != nil {
			webutil.WriteError(w, statusForFS(err), err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(content)
	})

	mux.HandleFunc("PUT /files/{owner}/{path...}", func(w http.ResponseWriter, r *http.Request) {
		owner := core.UserID(r.PathValue("owner"))
		path := "/" + r.PathValue("path")
		if !a.authorize(w, r, owner, path, core.ActionWrite) {
			return
		}
		content, err := io.ReadAll(http.MaxBytesReader(w, r.Body, webutil.MaxBodyBytes))
		if err != nil {
			webutil.WriteError(w, http.StatusBadRequest, err)
			return
		}
		if err := a.Tree(owner).Put(path, content); err != nil {
			webutil.WriteError(w, statusForFS(err), err)
			return
		}
		webutil.WriteJSON(w, http.StatusOK, map[string]any{"stored": path, "bytes": len(content)})
	})

	mux.HandleFunc("DELETE /files/{owner}/{path...}", func(w http.ResponseWriter, r *http.Request) {
		owner := core.UserID(r.PathValue("owner"))
		path := "/" + r.PathValue("path")
		if !a.authorize(w, r, owner, path, core.ActionDelete) {
			return
		}
		if err := a.Tree(owner).Delete(path); err != nil {
			webutil.WriteError(w, statusForFS(err), err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("GET /dirs/{owner}/{path...}", func(w http.ResponseWriter, r *http.Request) {
		owner := core.UserID(r.PathValue("owner"))
		path := "/" + r.PathValue("path")
		if !a.authorize(w, r, owner, path+"/", core.ActionList) {
			return
		}
		entries, err := a.Tree(owner).List(path)
		if err != nil {
			webutil.WriteError(w, statusForFS(err), err)
			return
		}
		webutil.WriteJSON(w, http.StatusOK, entries)
	})

	mux.HandleFunc("POST /backup", a.handleBackup)
	return mux
}

// backupRequest asks the storage service to fetch a remote resource (e.g. a
// gallery photo) and store it locally.
type backupRequest struct {
	// URL of the remote resource.
	URL string `json:"url"`
	// DestPath is where to store the copy in the requesting user's tree.
	DestPath string `json:"dest_path"`
}

// handleBackup acts as a Requester against another Host: the storage
// service fetches the resource through the full authorization choreography
// under its own application identity and the browsing user's subject.
func (a *App) handleBackup(w http.ResponseWriter, r *http.Request) {
	user, ok := a.Auth.Authenticate(r)
	if !ok {
		webutil.WriteErrorf(w, http.StatusUnauthorized, "storage: login required for backup")
		return
	}
	var req backupRequest
	if err := webutil.ReadJSON(r, &req); err != nil {
		webutil.WriteError(w, http.StatusBadRequest, err)
		return
	}
	if req.URL == "" || req.DestPath == "" {
		webutil.WriteErrorf(w, http.StatusBadRequest, "storage: url and dest_path required")
		return
	}
	client := requester.New(requester.Config{
		ID:      core.RequesterID(a.HostID),
		Subject: user,
	})
	content, err := client.Fetch(req.URL, core.ActionRead)
	if err != nil {
		status := http.StatusBadGateway
		if errors.Is(err, core.ErrAccessDenied) {
			status = http.StatusForbidden
		}
		webutil.WriteError(w, status, fmt.Errorf("storage: backup fetch: %w", err))
		return
	}
	if err := a.Tree(user).Put(req.DestPath, content); err != nil {
		webutil.WriteError(w, statusForFS(err), err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, map[string]any{"backed_up": req.DestPath, "bytes": len(content)})
}

// FileURL builds the canonical URL of a stored file.
func FileURL(baseURL string, owner core.UserID, path string) string {
	return strings.TrimSuffix(baseURL, "/") + "/files/" + string(owner) + "/" + strings.TrimPrefix(path, "/")
}

func statusForFS(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrBadPath), errors.Is(err, ErrIsDirectory), errors.Is(err, ErrNotDirectory):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}
