// Quickstart: protect one file with a user-chosen Authorization Manager and
// access it as a third party — the full protocol of Fig. 2 in ~80 lines.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"umac"
	"umac/internal/sim"
)

func main() {
	// A complete in-process deployment: one AM, one Host.
	world := sim.NewWorld()
	defer world.Close()
	host := world.AddHost("webpics")
	host.AddResource("bob", "travel", "sunset.jpg", []byte("…jpeg bytes…"))
	fmt.Println("Started AM at", world.AMServer.URL, "and host 'webpics' at", host.Server.URL)

	// (1) Delegating access control (Fig. 3): Bob points webpics at his AM;
	// his browser is bounced Host→AM→Host and the secure channel is set up.
	bob := sim.NewUserAgent("bob")
	if err := bob.PairHost(host, world.AMServer.URL); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Bob paired webpics with his AM")

	// (2) Composing policies (Fig. 4): webpics registers the 'travel' realm
	// and Bob composes a policy at the AM — here in the textual DSL.
	if err := host.Enforcer.Protect("bob", "travel", []umac.ResourceID{"sunset.jpg"}, ""); err != nil {
		log.Fatal(err)
	}
	policies, err := umac.ParsePolicies("bob", `
policy "friends-read" general {
  permit group:friends, owner read, list
}`)
	if err != nil {
		log.Fatal(err)
	}
	created, err := world.AM.CreatePolicy("bob", policies[0])
	if err != nil {
		log.Fatal(err)
	}
	if err := world.AM.LinkGeneral("bob", "travel", created.ID); err != nil {
		log.Fatal(err)
	}
	if err := world.AM.AddGroupMember("bob", "bob", "friends", "alice"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Bob linked policy", created.ID, "to realm 'travel' and added alice to friends")

	// (3)-(5) Obtaining a token, accessing the resource, decision query
	// (Figs. 5-6): alice's client does all of it behind one call.
	alice := umac.NewRequester(umac.RequesterConfig{ID: "alice-browser", Subject: "alice"})
	body, err := alice.Fetch(host.ResourceURL("sunset.jpg"), umac.ActionRead)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice read %d bytes of sunset.jpg (first access: full protocol)\n", len(body))

	// (6) Subsequent accesses: served from the Host's decision cache, no AM
	// round-trip.
	for i := 0; i < 3; i++ {
		if _, err := alice.Fetch(host.ResourceURL("sunset.jpg"), umac.ActionRead); err != nil {
			log.Fatal(err)
		}
	}
	hits, misses := host.Enforcer.Cache().Stats()
	fmt.Printf("3 subsequent accesses: decision-cache hits=%d misses=%d\n", hits, misses)

	// A stranger is denied centrally by the AM.
	mallory := umac.NewRequester(umac.RequesterConfig{ID: "mallory-app", Subject: "mallory"})
	if _, err := mallory.Fetch(host.ResourceURL("sunset.jpg"), umac.ActionRead); err != nil {
		fmt.Println("mallory denied:", err)
	}

	// The protocol trace (compare with Fig. 2 of the paper).
	fmt.Println("\nProtocol trace:")
	for _, e := range world.Tracer.Events() {
		fmt.Println(" ", e)
	}
}
