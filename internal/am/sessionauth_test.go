package am

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"umac/internal/identity"
	"umac/internal/policy"
)

// TestAMWithCookieSessionAuth wires the AM to the identity substrate the
// way a real deployment would replace the header shim: users authenticate
// at the IdP, exchange the assertion for a session cookie at the AM, and
// manage policies under that cookie. This proves the paper's "authentication
// is pluggable" assumption holds for our Authenticator seam (Section V.B:
// "a User could authenticate to a Host using OpenID or Google Account
// credentials").
func TestAMWithCookieSessionAuth(t *testing.T) {
	idp := identity.NewProvider(0)
	idp.Register("bob", "hunter2")
	sessions := identity.NewSessions(idp)

	a := New(Config{Name: "am", Auth: sessions})
	// A login endpoint in front of the AM exchanges a verified assertion
	// for a session cookie (deployment glue, not protocol).
	mux := http.NewServeMux()
	mux.Handle("/", a.Handler())
	mux.HandleFunc("POST /session", func(w http.ResponseWriter, r *http.Request) {
		if _, err := sessions.Establish(w, r.FormValue("assertion")); err != nil {
			http.Error(w, err.Error(), http.StatusUnauthorized)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	a.SetBaseURL(srv.URL)

	// Anonymous policy creation is refused.
	body, _ := json.Marshal(policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{Effect: policy.EffectPermit, Subjects: []policy.Subject{{Type: policy.SubjectEveryone}}}},
	})
	resp, err := http.Post(srv.URL+"/policies", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 401 {
		t.Fatalf("anonymous create = %d", resp.StatusCode)
	}

	// Bob logs in at the IdP and establishes an AM session.
	assertion, err := idp.Login("bob", "hunter2")
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(srv.URL+"/session?assertion="+assertion, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 204 {
		t.Fatalf("session status = %d", resp.StatusCode)
	}
	cookies := resp.Cookies()
	if len(cookies) != 1 {
		t.Fatalf("cookies = %d", len(cookies))
	}

	// With the cookie, the same create succeeds and is owned by bob.
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/policies", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.AddCookie(cookies[0])
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 201 {
		t.Fatalf("cookie create = %d", resp.StatusCode)
	}
	var created policy.Policy
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	if created.Owner != "bob" {
		t.Fatalf("owner = %s", created.Owner)
	}
	// Wrong password never yields a session.
	if _, err := idp.Login("bob", "wrong"); err == nil {
		t.Fatal("bad password accepted")
	}
}
