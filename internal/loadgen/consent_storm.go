package loadgen

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"time"

	"umac/internal/amclient"
	"umac/internal/core"
	"umac/internal/policy"
)

// This file is the consent_storm scenario: the event control plane's
// end-to-end latency proof. Every owner's realm is gated behind a
// require-consent policy; requesters subscribe to GET /v1/events/consent
// on the owner's shard primary BEFORE the owner resolves, and the
// measured op is resolution→notification — once over the stream, once
// over the classic TokenStatus poll loop at pollInterval. A policy-write
// churn goroutine runs through both measured phases (its acknowledged
// writes join the final loss audit), so the latency numbers are taken
// with the PAP mutating and invalidation events interleaving on the same
// broker. A waiter that never hears its resolution counts as Lost — the
// zero-loss contract applied to notifications.

// pollInterval is the baseline's TokenStatus cadence — the latency class
// the stream has to beat. DefaultConsentPollInterval in the requester is
// 1s; 150ms is a deliberately generous baseline.
const pollInterval = 150 * time.Millisecond

// notifyTimeout bounds one resolution→notification wait. On loopback a
// notification is milliseconds away; 10s of silence means it is lost.
const notifyTimeout = 10 * time.Second

// ConsentStorm measures consent resolution→notification latency over the
// event stream against the polling baseline, under concurrent PAP churn.
func ConsentStorm(ctx context.Context, rig *Rig, opts Options) (*Recorder, error) {
	rec := &Recorder{Scenario: "consent_storm"}
	// Consent events are published on the node that executes the
	// resolution, so the storm pins everything — ticket mint, stream
	// subscription, resolution — to the owners' shard primary. All owners
	// live on shard-a; a-primary is their resolving node.
	owners := rig.OwnersFor("storm", "shard-a", opts.Owners)
	rigs, err := setupOwners(ctx, rig, rec, "setup", owners)
	if err != nil {
		return rec, err
	}
	primaryURL := rig.Nodes["a-primary"].Proxy.URL()
	// The stream client carries no HTTPClient timeout: an SSE response
	// outlives any request timeout by design; ctx bounds it instead.
	streams := amclient.New(amclient.Config{BaseURL: primaryURL})
	sessions := make(map[core.UserID]*amclient.Client, len(owners))
	for _, owner := range owners {
		sessions[owner] = amclient.New(amclient.Config{
			BaseURL: primaryURL, User: owner,
			HTTPClient: &http.Client{Timeout: 15 * time.Second},
		})
	}

	// Gate every realm: LinkGeneral replaces the realm's single general
	// policy, so the gate re-states the alice permit alongside the
	// stormy-with-consent rule.
	var acked []ackedWrite
	gate := rec.Phase("gate")
	for _, owner := range owners {
		if err := checkCtx(ctx, "gate"); err != nil {
			gate.End()
			return rec, err
		}
		or := rigs[owner]
		err := gate.Op(func() error {
			p, err := or.Manager.CreatePolicy(policy.Policy{
				Owner: owner, Kind: policy.KindGeneral,
				Rules: []policy.Rule{
					{
						Effect:   policy.EffectPermit,
						Subjects: []policy.Subject{{Type: policy.SubjectUser, Name: "alice"}},
						Actions:  []core.Action{core.ActionRead},
					},
					{
						Effect:     policy.EffectPermit,
						Subjects:   []policy.Subject{{Type: policy.SubjectUser, Name: "stormy"}},
						Actions:    []core.Action{core.ActionRead},
						Conditions: []policy.Condition{{Type: policy.CondRequireConsent}},
					},
				},
			})
			if err != nil {
				return err
			}
			acked = append(acked, ackedWrite{owner, p.ID})
			return or.Manager.LinkGeneral(owner, or.Realm, p.ID)
		})
		if err != nil {
			gate.End()
			return rec, phaseErr("gate", err)
		}
	}
	gate.End()

	// PAP churn through both measured phases: policy writes (and the
	// invalidation events they publish) keep the broker and the WAL busy
	// while resolutions race through. Unrecorded as a phase — phases must
	// not overlap — but every acknowledged write joins the loss audit.
	var (
		churnMu    sync.Mutex
		churnErr   error
		churnCount int
		churnStop  = make(chan struct{})
		churnDone  sync.WaitGroup
	)
	churnDone.Add(1)
	go func() {
		defer churnDone.Done()
		for i := 0; ; i++ {
			select {
			case <-churnStop:
				return
			case <-ctx.Done():
				return
			default:
			}
			or := rigs[owners[i%len(owners)]]
			id, err := or.WritePolicy(1000 + i)
			churnMu.Lock()
			if err != nil {
				if churnErr == nil {
					churnErr = err
				}
			} else {
				acked = append(acked, ackedWrite{or.Owner, id})
				churnCount++
			}
			churnMu.Unlock()
		}
	}()
	stopChurn := func() {
		select {
		case <-churnStop:
		default:
			close(churnStop)
		}
		churnDone.Wait()
	}
	defer stopChurn()

	// mint requests a stormy token and returns the pending-consent ticket.
	mint := func(owner core.UserID) (string, error) {
		tr, err := sessions[owner].RequestToken(core.TokenRequest{
			Requester: "storm-app", Subject: "stormy", Host: rigHost,
			Realm: rigs[owner].Realm, Resource: "photo", Action: core.ActionRead,
		})
		if err != nil {
			return "", err
		}
		if tr.PendingConsent == "" {
			return "", fmt.Errorf("token for %s granted outright; consent gate missing", owner)
		}
		return tr.PendingConsent, nil
	}

	// resolveAndWait is one measured op: resolve the ticket, then block
	// until the pre-subscribed waiter reports the notification.
	resolveAndWait := func(ph *PhaseRec, owner core.UserID, ticket string, notified <-chan error) error {
		return ph.Op(func() error {
			if err := sessions[owner].ResolveConsent(ticket, true); err != nil {
				return fmt.Errorf("resolve %s: %w", ticket, err)
			}
			select {
			case err := <-notified:
				return err
			case <-time.After(notifyTimeout):
				ph.Lost++
				return fmt.Errorf("resolution of %s never notified within %s", ticket, notifyTimeout)
			case <-ctx.Done():
				return ctx.Err()
			}
		})
	}

	// Phase stream_notify: the waiter is an EventStream subscriber,
	// connected (and therefore registered on the broker) before the
	// resolution fires.
	stream := rec.Phase("stream_notify")
	for i := 0; i < opts.Ops; i++ {
		if err := checkCtx(ctx, "stream_notify"); err != nil {
			stream.End()
			return rec, err
		}
		owner := owners[i%len(owners)]
		ticket, err := mint(owner)
		if err != nil {
			stream.End()
			return rec, phaseErr("stream_notify", err)
		}
		s := streams.Stream(amclient.StreamConfig{
			Path:  "/events/consent",
			Query: url.Values{core.ParamTicket: {ticket}},
		})
		if err := s.Connect(ctx); err != nil {
			s.Close()
			stream.End()
			return rec, phaseErr("stream_notify", err)
		}
		notified := make(chan error, 1)
		go func() { notified <- awaitStreamConsent(ctx, s, sessions[owner], ticket) }()
		err = resolveAndWait(stream, owner, ticket, notified)
		s.Close()
		if err != nil {
			stream.End()
			return rec, phaseErr("stream_notify", err)
		}
	}
	stream.End()

	// Phase poll_notify: the same op with the waiter on the classic
	// TokenStatus loop. The poller starts before the resolution — exactly
	// like a requester that began polling at ticket time — so the measured
	// latency carries the honest uniform phase offset of polling.
	poll := rec.Phase("poll_notify")
	for i := 0; i < opts.Ops; i++ {
		if err := checkCtx(ctx, "poll_notify"); err != nil {
			poll.End()
			return rec, err
		}
		owner := owners[i%len(owners)]
		ticket, err := mint(owner)
		if err != nil {
			poll.End()
			return rec, phaseErr("poll_notify", err)
		}
		notified := make(chan error, 1)
		go func() { notified <- awaitPolledConsent(ctx, sessions[owner], ticket) }()
		if err := resolveAndWait(poll, owner, ticket, notified); err != nil {
			poll.End()
			return rec, phaseErr("poll_notify", err)
		}
	}
	poll.End()

	stopChurn()
	churnMu.Lock()
	cErr, cCount := churnErr, churnCount
	churnMu.Unlock()
	if cErr != nil {
		return rec, phaseErr("churn", cErr)
	}
	rig.Logf("loadgen: consent_storm churn acknowledged %d policy writes", cCount)

	return rec, verifyAcked(ctx, rec, "verify", acked, func(w ackedWrite) error {
		_, err := rigs[w.owner].Manager.GetPolicy(w.owner, w.id)
		return err
	})
}

// awaitStreamConsent consumes the consent stream until the ticket's
// resolution arrives. A resync marker (events lost under the subscriber's
// buffer) falls back to one status check, mirroring the requester SDK.
func awaitStreamConsent(ctx context.Context, s *amclient.EventStream, session *amclient.Client, ticket string) error {
	for {
		ev, err := s.Next(ctx)
		if err != nil {
			return fmt.Errorf("stream wait for %s: %w", ticket, err)
		}
		switch ev.Type {
		case core.EventConsent:
			if st := ev.Consent; st != nil && st.Resolved {
				if !st.Approved {
					return fmt.Errorf("ticket %s denied; storm approves everything", ticket)
				}
				if st.Token == "" {
					return fmt.Errorf("ticket %s resolved without a token on the stream", ticket)
				}
				return nil
			}
		case core.EventResync:
			st, err := session.TokenStatus(ticket)
			if err == nil && st.Resolved {
				return nil
			}
		}
	}
}

// awaitPolledConsent is the baseline waiter: TokenStatus at pollInterval
// until the ticket resolves.
func awaitPolledConsent(ctx context.Context, session *amclient.Client, ticket string) error {
	t := time.NewTimer(0)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
		st, err := session.TokenStatus(ticket)
		if err != nil {
			var ae *core.APIError
			if !errors.As(err, &ae) {
				return fmt.Errorf("poll wait for %s: %w", ticket, err)
			}
			// An APIError (e.g. a transient follower answer) is retried on
			// the next tick, like a real poller.
		} else if st.Resolved {
			return nil
		}
		t.Reset(pollInterval)
	}
}
