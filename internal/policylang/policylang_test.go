package policylang

import (
	"strings"
	"testing"
	"time"

	"umac/internal/baseline/localacl"
	"umac/internal/core"
	"umac/internal/policy"
)

const sample = `
# Bob's sharing policies.
policy "friends-read" general ttl 300 {
  permit group:friends, owner read, list
  deny user:mallory
}

policy "paid-print" specific {
  permit everyone read if claim payment
  permit user:vip read if claim tier = premium and consent
  permit everyone read if after 2026-01-01T00:00:00Z and before 2026-12-31T00:00:00Z
}
`

func TestParseSample(t *testing.T) {
	policies, err := Parse("bob", sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(policies) != 2 {
		t.Fatalf("policies = %d", len(policies))
	}

	p0 := policies[0]
	if p0.Name != "friends-read" || p0.Kind != policy.KindGeneral || p0.CacheTTLSeconds != 300 {
		t.Fatalf("p0 = %+v", p0)
	}
	if p0.Owner != "bob" {
		t.Fatalf("owner = %s", p0.Owner)
	}
	if len(p0.Rules) != 2 {
		t.Fatalf("p0 rules = %d", len(p0.Rules))
	}
	r0 := p0.Rules[0]
	if r0.Effect != policy.EffectPermit || len(r0.Subjects) != 2 || len(r0.Actions) != 2 {
		t.Fatalf("r0 = %+v", r0)
	}
	if r0.Subjects[0] != (policy.Subject{Type: policy.SubjectGroup, Name: "friends"}) ||
		r0.Subjects[1] != (policy.Subject{Type: policy.SubjectOwner}) {
		t.Fatalf("r0 subjects = %+v", r0.Subjects)
	}
	if p0.Rules[1].Effect != policy.EffectDeny || len(p0.Rules[1].Actions) != 0 {
		t.Fatalf("r1 = %+v", p0.Rules[1])
	}

	p1 := policies[1]
	if p1.Kind != policy.KindSpecific || len(p1.Rules) != 3 {
		t.Fatalf("p1 = %+v", p1)
	}
	if p1.Rules[0].Conditions[0].Type != policy.CondRequireClaim || p1.Rules[0].Conditions[0].Claim != "payment" {
		t.Fatalf("claim cond = %+v", p1.Rules[0].Conditions)
	}
	// claim with exact value plus consent on one rule.
	c := p1.Rules[1].Conditions
	if len(c) != 2 || c[0].Value != "premium" || c[1].Type != policy.CondRequireConsent {
		t.Fatalf("vip conds = %+v", c)
	}
	// time window split into after+before conditions.
	tc := p1.Rules[2].Conditions
	if len(tc) != 2 || tc[0].NotBefore.IsZero() || tc[1].NotAfter.IsZero() {
		t.Fatalf("time conds = %+v", tc)
	}
}

func TestParsedPoliciesEvaluate(t *testing.T) {
	policies, err := Parse("bob", sample)
	if err != nil {
		t.Fatal(err)
	}
	var dir policy.Directory
	dir.Add("bob", "friends", "alice")
	e := policy.NewEngine(&dir)
	req := policy.Request{
		Subject: "alice", Action: core.ActionRead, Owner: "bob", Realm: "travel",
		Resource: core.ResourceRef{Host: "webpics", Resource: "p1"},
	}
	if res := e.Evaluate(req, &policies[0], nil); res.Decision != core.DecisionPermit {
		t.Fatalf("alice: %v (%s)", res.Decision, res.Reason)
	}
	req.Subject = "mallory"
	if res := e.Evaluate(req, &policies[0], nil); res.Decision != core.DecisionDeny {
		t.Fatalf("mallory: %v", res.Decision)
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	policies, err := Parse("bob", sample)
	if err != nil {
		t.Fatal(err)
	}
	formatted := Format(policies)
	reparsed, err := Parse("bob", formatted)
	if err != nil {
		t.Fatalf("reparse: %v\nformatted:\n%s", err, formatted)
	}
	if len(reparsed) != len(policies) {
		t.Fatalf("reparsed %d policies", len(reparsed))
	}
	// Semantic comparison: same decisions for representative requests.
	e := policy.NewEngine(nil)
	base := time.Date(2026, 6, 15, 0, 0, 0, 0, time.UTC)
	for _, subject := range []core.UserID{"bob", "alice", "mallory", ""} {
		for _, action := range []core.Action{core.ActionRead, core.ActionWrite} {
			req := policy.Request{
				Subject: subject, Action: action, Owner: "bob",
				Claims: map[string]string{"payment": "x"}, Time: base,
			}
			for i := range policies {
				a := e.Evaluate(req, &policies[i], nil)
				b := e.Evaluate(req, &reparsed[i], nil)
				if a.Decision != b.Decision {
					t.Fatalf("policy %d subject %q action %s: %v vs %v",
						i, subject, action, a.Decision, b.Decision)
				}
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"rule outside block":  `permit everyone`,
		"nested policy":       "policy \"a\" general {\npolicy \"b\" general {",
		"unmatched close":     `}`,
		"unterminated":        `policy "a" general {`,
		"unquoted name":       `policy name general {`,
		"unterminated name":   `policy "name general {`,
		"empty name":          `policy "" general {`,
		"missing kind":        `policy "a" {`,
		"bad kind":            `policy "a" broad {`,
		"bad ttl":             `policy "a" general ttl xx {`,
		"ttl no value":        `policy "a" general ttl {`,
		"header trailing":     `policy "a" general extra {`,
		"no brace":            `policy "a" general`,
		"bad effect":          "policy \"a\" general {\nallow everyone\n}",
		"no subjects":         "policy \"a\" general {\npermit\n}",
		"bad subject":         "policy \"a\" general {\npermit nobody:x\n}",
		"action then subject": "policy \"a\" general {\npermit everyone read, owner\n}",
		"bad condition":       "policy \"a\" general {\npermit everyone if phase-of-moon\n}",
		"claim no name":       "policy \"a\" general {\npermit everyone if claim\n}",
		"bad claim value":     "policy \"a\" general {\npermit everyone if claim x is y\n}",
		"bad timestamp":       "policy \"a\" general {\npermit everyone if before tomorrow\n}",
		"consent with arg":    "policy \"a\" general {\npermit everyone if consent now\n}",
		"empty rules":         "policy \"a\" general {\n}",
	}
	for name, src := range cases {
		if _, err := Parse("bob", src); err == nil {
			t.Errorf("%s: parsed without error", name)
		} else {
			var pe *ParseError
			if !strings.Contains(err.Error(), "line") {
				t.Errorf("%s: error lacks line info: %v", name, err)
			}
			_ = pe
		}
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	src := `
# leading comment

policy "p" general {   # trailing comment is not supported on headers? keep separate
  permit everyone read   # inline comment
}
`
	// The '#' on the header line would break parsing; use a clean header.
	src = strings.Replace(src, `policy "p" general {   # trailing comment is not supported on headers? keep separate`,
		`policy "p" general {`, 1)
	policies, err := Parse("bob", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(policies) != 1 || len(policies[0].Rules) != 1 {
		t.Fatalf("policies = %+v", policies)
	}
}

func TestHeaderCommentSupported(t *testing.T) {
	// Comments are stripped before parsing, so they are fine anywhere.
	src := "policy \"p\" general { # my policy\n permit everyone\n}"
	if _, err := Parse("bob", src); err != nil {
		t.Fatal(err)
	}
}

func TestFromMatrix(t *testing.T) {
	var m localacl.Matrix
	m.Grant("bob", "/travel/a.jpg", "alice", core.ActionRead, core.ActionList)
	m.Grant("bob", "/travel/a.jpg", "chris", core.ActionRead)
	m.Grant("bob", "/travel/b.jpg", "alice", core.ActionWrite)

	policies := FromMatrix("bob", &m, []core.ResourceID{"/travel/a.jpg", "/travel/b.jpg", "/travel/unshared.jpg"})
	if len(policies) != 2 {
		t.Fatalf("policies = %d", len(policies))
	}
	for _, p := range policies {
		if err := p.Validate(); err != nil {
			t.Fatalf("migrated policy invalid: %v", err)
		}
		if p.Kind != policy.KindSpecific {
			t.Fatalf("kind = %v", p.Kind)
		}
	}
	// The migrated policy reproduces the matrix's decisions.
	e := policy.NewEngine(nil)
	req := policy.Request{
		Subject: "alice", Action: core.ActionRead, Owner: "bob",
		Resource: core.ResourceRef{Host: "storage", Resource: "/travel/a.jpg"},
	}
	// Evaluate the specific policy under a permissive general policy (the
	// migration pairs them with an owner-chosen general policy).
	general := &policy.Policy{
		ID: "g", Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{Effect: policy.EffectPermit, Subjects: []policy.Subject{{Type: policy.SubjectEveryone}}}},
	}
	if res := e.Evaluate(req, general, &policies[0]); res.Decision != core.DecisionPermit {
		t.Fatalf("alice read migrated: %v", res.Decision)
	}
	req.Subject = "chris"
	req.Action = core.ActionWrite
	res := e.Evaluate(req, general, &policies[0])
	// chris has read only; the specific policy is silent on his write, so
	// the permissive general wins — matching FromMatrix's documented
	// semantics that the general policy sets the outer bound.
	if res.Decision != core.DecisionPermit {
		t.Fatalf("chris write under permissive general: %v", res.Decision)
	}
	// Under a read-only general policy, chris cannot write.
	generalRO := &policy.Policy{
		ID: "g2", Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect: policy.EffectPermit, Subjects: []policy.Subject{{Type: policy.SubjectEveryone}},
			Actions: []core.Action{core.ActionRead, core.ActionList},
		}},
	}
	if res := e.Evaluate(req, generalRO, &policies[0]); res.Decision != core.DecisionDeny {
		t.Fatalf("chris write under read-only general: %v", res.Decision)
	}
}

func TestFromMatrixEmpty(t *testing.T) {
	var m localacl.Matrix
	if got := FromMatrix("bob", &m, []core.ResourceID{"/x"}); len(got) != 0 {
		t.Fatalf("policies from empty matrix: %d", len(got))
	}
}

func TestFormatEmptyActionsOmitted(t *testing.T) {
	p := policy.Policy{
		ID: "p", Owner: "bob", Name: "all-actions", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{Effect: policy.EffectDeny, Subjects: []policy.Subject{{Type: policy.SubjectEveryone}}}},
	}
	out := Format([]policy.Policy{p})
	if strings.Contains(out, "deny everyone ") && strings.TrimSpace(out) != "" {
		// No action list should trail the subject.
		line := strings.Split(out, "\n")[1]
		if strings.TrimSpace(line) != "deny everyone" {
			t.Fatalf("line = %q", line)
		}
	}
}

func TestParseCombineKeyword(t *testing.T) {
	policies, err := Parse("bob", `
policy "ordered" general combine first-applicable ttl 60 {
  deny user:mallory
  permit everyone read
}`)
	if err != nil {
		t.Fatal(err)
	}
	if policies[0].Combining != policy.CombineFirstApplicable || policies[0].CacheTTLSeconds != 60 {
		t.Fatalf("policy = %+v", policies[0])
	}
	// Round-trips through Format.
	reparsed, err := Parse("bob", Format(policies))
	if err != nil {
		t.Fatal(err)
	}
	if reparsed[0].Combining != policy.CombineFirstApplicable {
		t.Fatalf("combining lost in format round trip: %+v", reparsed[0])
	}
	// Unknown algorithm rejected.
	if _, err := Parse("bob", `policy "x" general combine coin-flip {
  permit everyone
}`); err == nil {
		t.Fatal("unknown combining accepted")
	}
}
