// Package loadgen is the scenario-diverse load harness: it spawns real
// amserver binaries (not in-process handlers), fronts every node with a
// fault-injection proxy, and drives UMA protocol traffic through the
// shard-aware typed client — the same SDK production callers use. Each
// scenario stresses a different axis of the paper's AM design:
//
//   - zipf_hot_owner: Zipf-distributed owner popularity — a handful of
//     hot owners absorb most of the decision traffic while writes trickle
//     in, with a latency shim phase on the hot shard.
//   - pairing_churn: IoT-style Host↔AM pairing lifecycle churn —
//     confirm/exchange/protect/decide/revoke loops, half of them under
//     injected latency.
//   - delegation_chain: custodian delegation chains — each owner appoints
//     the next as custodian, custodians write policies for their wards
//     cross-shard, and the chain is walked with decision queries.
//   - kill_migration: a hard SIGKILL of a shard primary in the middle of
//     a live owner migration, recovery from the WAL, a migration retry,
//     and a zero-acknowledged-write-loss audit afterwards.
//   - consent_storm: consent-gated token requests with subscribers on the
//     GET /v1/events/consent stream — resolution→notification latency
//     measured over the stream and over the TokenStatus poll loop, under
//     concurrent policy-write churn, with lost notifications counted as
//     Lost.
//   - ring_double: the ring grows from two shards to four through the
//     bulk-rebalance coordinator under sustained Zipf load, with SIGKILLs
//     of a migrating shard primary AND of the coordinator host mid-plan —
//     the resumed plan must finish unchanged, with zero acknowledged loss
//     and a bounded under-rebalance p99.
//   - kill_rebalance: shard-b is drained to extinction through the same
//     coordinator under the same two kills; afterwards the final ring
//     (shard-b gone) must be in force everywhere and the drained node
//     must disclaim every owner it used to serve.
//   - abusive_tenant: one tenant floods decisions and policy churn far
//     past its per-tenant rate budget while a victim on the SAME shard
//     runs the standard paced mix — the abuser must drown in 429s
//     (≥95% once over budget), the victim's decision p99 must stay
//     within 2x its clean-run baseline, and no acknowledged write may
//     be lost. The cluster runs with the abuse-control flags enabled
//     (the only scenario that does; see ScenarioExtraArgs).
//
// Every scenario reports per-phase throughput, p50/p99 latency, error and
// loss counters in a superset of the repo's -benchjson schema (see
// docs/BENCHMARKS.md), and asserts that no write acknowledged to the
// client is ever lost — the durability contract the WAL + replication +
// migration stack promises.
//
// The harness runs from `go test ./internal/loadgen` (small smoke
// instances, CI's loadgen-smoke job) and from `cmd/loadgen` (full-size
// runs that regenerate BENCH_E17.json).
package loadgen

import (
	"context"
	"fmt"
	"sort"
)

// Options sizes a scenario run. The zero value is invalid; use
// SmokeOptions or FullOptions as a base.
type Options struct {
	// Owners is how many resource owners the scenario provisions.
	Owners int
	// Ops is the per-phase operation budget (decisions, writes, churn
	// cycles — each scenario documents its own unit).
	Ops int
	// Seed feeds every random source in the scenario (Zipf picks, owner
	// spread), making runs reproducible bit-for-bit.
	Seed int64
}

// SmokeOptions is the CI-sized run: seconds per scenario, enough load to
// exercise every code path but not to produce stable latency numbers.
func SmokeOptions() Options { return Options{Owners: 4, Ops: 40, Seed: 1} }

// FullOptions is the BENCH_E17 run: minutes per scenario, enough samples
// for the p99 to mean something on the 1-CPU container.
func FullOptions() Options { return Options{Owners: 8, Ops: 400, Seed: 1} }

// Scenario drives one workload against a running rig and reports its
// per-phase measurements. Scenarios own their fault schedule (latency
// shims, partitions, kills) but must leave the rig's processes running —
// except kill_migration, which restarts what it kills.
type Scenario func(ctx context.Context, rig *Rig, opts Options) (*Recorder, error)

// Scenarios is the registry, keyed by the scenario name that prefixes its
// benchjson records. cmd/loadgen and the CI smoke job iterate it.
var Scenarios = map[string]Scenario{
	"zipf_hot_owner":   ZipfHotOwner,
	"pairing_churn":    PairingChurn,
	"delegation_chain": DelegationChain,
	"kill_migration":   KillMigration,
	"consent_storm":    ConsentStorm,
	"ring_double":      RingDouble,
	"kill_rebalance":   KillRebalance,
	"abusive_tenant":   AbusiveTenant,
}

// ScenarioExtraArgs returns the extra amserver flags a scenario's cluster
// must be started with (passed through to StartCluster). Most scenarios
// run the stock server; abusive_tenant needs the per-tenant limiter armed:
// tight pairing/session budgets sized so the paced victim mix fits with
// headroom while an unpaced flood is over budget within a second, and an
// effectively unlimited IP tier because every harness client shares
// 127.0.0.1 — the per-IP tier would otherwise punish the victim for the
// abuser's address.
func ScenarioExtraArgs(name string) []string {
	if name != "abusive_tenant" {
		return nil
	}
	return []string{
		"-rate-pairing", "10", "-rate-pairing-burst", "20",
		"-rate-session", "10", "-rate-session-burst", "20",
		"-rate-ip", "1000000", "-rate-ip-burst", "2000000",
	}
}

// ScenarioNames returns the registry keys sorted, for deterministic
// iteration order in CLIs and tests.
func ScenarioNames() []string {
	names := make([]string, 0, len(Scenarios))
	for name := range Scenarios {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// phaseErr wraps an error with the scenario phase it interrupted, so a
// hung drain or a context deadline names the exact spot.
func phaseErr(phase string, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("loadgen: phase %s: %w", phase, err)
}

// checkCtx is the per-iteration guard of every load loop: it converts a
// cancelled or expired context into a phase-named error instead of letting
// the loop spin against dead servers.
func checkCtx(ctx context.Context, phase string) error {
	select {
	case <-ctx.Done():
		return phaseErr(phase, ctx.Err())
	default:
		return nil
	}
}
