package amclient

import (
	"fmt"

	"umac/internal/core"
)

// This file orchestrates a live owner migration between two shards of a
// sharded AM cluster: the owner's closure (pairings, realms, policies,
// links, groups, custodians, grants) is streamed from the losing shard to
// the gaining shard over the owner-scoped replication surface, writes
// landing on the losing shard during the copy are shipped continuously
// (the WAL-tail catch-up — the double-write window of the cutover), ring
// ownership is flipped via per-owner overrides, and a final drain picks up
// every write the losing shard acknowledged before the flip took effect.
// Zero acknowledged-write loss: a write either lands before the flip (and
// the drain ships it) or after (and the losing shard answers wrong_shard,
// so the client's chase re-routes it to the gaining shard).
//
// umacctl migrate-owner and the sim's cluster workload both drive this
// function; docs/OPERATIONS.md documents it as the 7-step migration drill.

// migrateTailBatch is the per-round record cap of the catch-up and drain
// tails.
const migrateTailBatch = 1024

// migrateMaxCatchup bounds the pre-cutover catch-up rounds: under a
// relentless write load the tail may never go empty, and correctness does
// not require it to — the post-cutover drain ships the remainder.
const migrateMaxCatchup = 64

// MigrateReport summarizes one live owner migration.
type MigrateReport struct {
	// Owner is the migrated owner.
	Owner core.UserID `json:"owner"`
	// FromShard and ToShard name the losing and gaining shards.
	FromShard string `json:"from_shard"`
	ToShard   string `json:"to_shard"`
	// SnapshotRecords counts the owner-closure records in the initial
	// scoped snapshot.
	SnapshotRecords int `json:"snapshot_records"`
	// CatchupRecords counts records shipped by the pre-cutover tail.
	CatchupRecords int `json:"catchup_records"`
	// DrainRecords counts records shipped by the post-cutover drain —
	// writes acknowledged by the losing shard while the flip propagated.
	DrainRecords int `json:"drain_records"`
}

// MigrateOwner moves owner from the shard behind src to the shard named
// toShard behind dst. Both clients need Config.ReplSecret (the migration
// surface's bearer auth). progress, when non-nil, receives one line per
// drill step. See the package comment above for the loss-freedom
// argument.
func MigrateOwner(src, dst *Client, owner core.UserID, toShard string, progress func(step int, msg string)) (MigrateReport, error) {
	rep := MigrateReport{Owner: owner, ToShard: toShard}
	say := func(step int, format string, args ...any) {
		if progress != nil {
			progress(step, fmt.Sprintf(format, args...))
		}
	}

	// Step 1: confirm the topology — the target shard must exist on both
	// sides' rings, and dst must actually front it.
	srcInfo, err := src.ClusterInfo()
	if err != nil {
		return rep, fmt.Errorf("amclient: migrate: source cluster info: %w", err)
	}
	dstInfo, err := dst.ClusterInfo()
	if err != nil {
		return rep, fmt.Errorf("amclient: migrate: target cluster info: %w", err)
	}
	rep.FromShard = srcInfo.Shard
	if dstInfo.Shard != toShard {
		return rep, fmt.Errorf("amclient: migrate: target node belongs to shard %q, not %q", dstInfo.Shard, toShard)
	}
	if srcInfo.Shard == toShard {
		return rep, fmt.Errorf("amclient: migrate: owner already targeted at shard %q", toShard)
	}
	say(1, "topology confirmed: %s → %s", srcInfo.Shard, toShard)

	// Step 2: owner-scoped snapshot from the losing shard.
	snap, err := src.ReplicationSnapshotScoped(owner)
	if err != nil {
		return rep, fmt.Errorf("amclient: migrate: scoped snapshot: %w", err)
	}
	rep.SnapshotRecords = len(snap.Records)
	say(2, "snapshot captured: %d records at seq %d", len(snap.Records), snap.Seq)

	// Step 3: install the snapshot on the gaining shard.
	if _, err := dst.ClusterImport(snap.Records); err != nil {
		return rep, fmt.Errorf("amclient: migrate: import snapshot: %w", err)
	}
	say(3, "snapshot imported")

	// Step 4: catch-up — ship owner writes that landed during the copy,
	// until a round comes back empty (or the bound trips; the drain covers
	// the rest either way).
	from := snap.Seq
	for round := 0; round < migrateMaxCatchup; round++ {
		page, err := src.ReplicationTailScoped(owner, from, migrateTailBatch)
		if err != nil {
			return rep, fmt.Errorf("amclient: migrate: catch-up tail: %w", err)
		}
		if len(page.Records) > 0 {
			if _, err := dst.ClusterImport(page.Records); err != nil {
				return rep, fmt.Errorf("amclient: migrate: import catch-up: %w", err)
			}
			rep.CatchupRecords += len(page.Records)
		}
		caughtUp := len(page.Records) == 0 && page.LastSeq == from
		from = page.LastSeq
		if caughtUp {
			break
		}
	}
	say(4, "caught up: %d records shipped, offset %d", rep.CatchupRecords, from)

	// Step 5: the gaining shard starts accepting the owner (its hash ring
	// would otherwise still disclaim it). From here until step 6 both
	// shards accept the owner — the double-write window; writes still
	// landing at the source are shipped by the drain.
	if err := dst.SetOwnerShard(owner, toShard); err != nil {
		return rep, fmt.Errorf("amclient: migrate: pin owner on target: %w", err)
	}
	say(5, "target accepts %s", owner)

	// Step 6: cutover — the losing shard stops serving the owner; every
	// subsequent decision or write there answers wrong_shard with the
	// gaining shard as the hint.
	if err := src.SetOwnerShard(owner, toShard); err != nil {
		return rep, fmt.Errorf("amclient: migrate: flip owner on source: %w", err)
	}
	say(6, "cutover: source now answers wrong_shard for %s", owner)

	// Step 7: final drain — ship everything the source acknowledged
	// before the flip became visible. Two consecutive empty rounds mean
	// no owner record appeared between two scans of the source WAL, at
	// which point nothing more can arrive (the gate is closed).
	empty := 0
	for empty < 2 {
		page, err := src.ReplicationTailScoped(owner, from, migrateTailBatch)
		if err != nil {
			return rep, fmt.Errorf("amclient: migrate: drain tail: %w", err)
		}
		if len(page.Records) > 0 {
			if _, err := dst.ClusterImport(page.Records); err != nil {
				return rep, fmt.Errorf("amclient: migrate: import drain: %w", err)
			}
			rep.DrainRecords += len(page.Records)
			empty = 0
		} else {
			empty++
		}
		from = page.LastSeq
	}
	say(7, "drained: %d records; migration complete", rep.DrainRecords)
	return rep, nil
}
