package core

// This file defines the wire vocabulary of the sharded AM cluster surface
// (GET /v1/cluster and the owner-migration admin routes). A cluster
// partitions the decision space by resource owner: a consistent-hash ring
// (internal/cluster) maps every owner to exactly one shard, where a shard
// is one replication group (a primary plus its followers). Owner ownership
// can be overridden per owner — the mechanism live migration uses to flip
// an owner between shards without rehashing anyone else. See
// docs/PROTOCOL.md ("Cluster") and docs/OPERATIONS.md ("Sharded cluster").

// ShardInfo names one shard of a sharded AM cluster: a replication group
// addressed by its primary's base URL plus every serving endpoint
// (primary first, then followers) a client may fail over across.
type ShardInfo struct {
	// Name is the shard's stable identifier; it seeds the shard's points
	// on the consistent-hash ring, so renaming a shard remaps owners.
	Name string `json:"name"`
	// Primary is the base URL of the shard's primary (write) endpoint.
	Primary string `json:"primary"`
	// Endpoints lists every serving endpoint of the shard, primary
	// included. Clients spread reads and fail over across them.
	Endpoints []string `json:"endpoints,omitempty"`
}

// ClusterInfo answers GET /v1/cluster: the ring every node of a sharded
// deployment is configured with, this node's own place in it, and the
// per-owner overrides currently in force. Clients rebuild their routing
// ring from it and refresh it when a wrong_shard answer proves it stale.
type ClusterInfo struct {
	// Shard is the name of the shard the answering node belongs to.
	Shard string `json:"shard"`
	// Vnodes is the virtual-node count per shard the ring was built with.
	Vnodes int `json:"vnodes"`
	// Shards is the full ring membership.
	Shards []ShardInfo `json:"shards"`
	// Overrides pins owners to shards irrespective of the hash ring —
	// the live-migration cutover state, keyed by owner, valued by shard
	// name. Replicated within each shard like any other store state.
	Overrides map[string]string `json:"overrides,omitempty"`
}

// OwnerOverrideRequest is the body of PUT /v1/cluster/owners/{owner}: pin
// the owner to the named shard on the receiving node's shard group.
type OwnerOverrideRequest struct {
	// Shard is the name of the shard that owns the owner from now on.
	Shard string `json:"shard"`
}

// ClusterImportRequest is the body of POST /v1/cluster/import: replicated
// records captured from another shard (an owner-scoped snapshot or WAL
// tail) to install locally as ordinary writes. The receiving primary
// re-sequences them into its own WAL, so they replicate onward to its
// followers like any native mutation.
type ClusterImportRequest struct {
	// Records are applied in order; puts overwrite, deletes remove.
	Records []ReplRecord `json:"records"`
}

// ClusterImportResponse acknowledges an import with the number of records
// applied.
type ClusterImportResponse struct {
	// Applied counts the records installed.
	Applied int `json:"applied"`
}
