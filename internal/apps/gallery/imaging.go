// Package gallery implements the second prototype Host of Section VI:
// an online photo gallery where users "upload photos and create photo
// albums. Additionally, it allows users to edit their photos (resize,
// rotate, crop, etc.). Thus, this application also acts as a Web-based
// photo editing tool."
//
// Photos are PNG-encoded; the editing operations are implemented directly
// on the stdlib image types (no third-party imaging dependency).
package gallery

import (
	"bytes"
	"fmt"
	"image"
	"image/color"
	"image/png"

	// Register decoders for uploads in common formats.
	_ "image/gif"
	_ "image/jpeg"
)

// Decode parses image bytes (PNG, JPEG or GIF).
func Decode(data []byte) (image.Image, error) {
	img, _, err := image.Decode(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("gallery: decode image: %w", err)
	}
	return img, nil
}

// EncodePNG serializes an image as PNG.
func EncodePNG(img image.Image) ([]byte, error) {
	var buf bytes.Buffer
	if err := png.Encode(&buf, img); err != nil {
		return nil, fmt.Errorf("gallery: encode png: %w", err)
	}
	return buf.Bytes(), nil
}

// Resize scales img to width×height with nearest-neighbour sampling.
func Resize(img image.Image, width, height int) (*image.RGBA, error) {
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("gallery: resize to %dx%d: dimensions must be positive", width, height)
	}
	src := img.Bounds()
	if src.Dx() == 0 || src.Dy() == 0 {
		return nil, fmt.Errorf("gallery: resize of empty image")
	}
	dst := image.NewRGBA(image.Rect(0, 0, width, height))
	for y := 0; y < height; y++ {
		sy := src.Min.Y + y*src.Dy()/height
		for x := 0; x < width; x++ {
			sx := src.Min.X + x*src.Dx()/width
			dst.Set(x, y, img.At(sx, sy))
		}
	}
	return dst, nil
}

// Rotate90 rotates img 90° clockwise.
func Rotate90(img image.Image) *image.RGBA {
	src := img.Bounds()
	dst := image.NewRGBA(image.Rect(0, 0, src.Dy(), src.Dx()))
	for y := src.Min.Y; y < src.Max.Y; y++ {
		for x := src.Min.X; x < src.Max.X; x++ {
			dst.Set(src.Max.Y-1-y, x-src.Min.X, img.At(x, y))
		}
	}
	return dst
}

// Rotate180 rotates img 180°.
func Rotate180(img image.Image) *image.RGBA {
	src := img.Bounds()
	dst := image.NewRGBA(image.Rect(0, 0, src.Dx(), src.Dy()))
	for y := src.Min.Y; y < src.Max.Y; y++ {
		for x := src.Min.X; x < src.Max.X; x++ {
			dst.Set(src.Max.X-1-x, src.Max.Y-1-y, img.At(x, y))
		}
	}
	return dst
}

// Rotate270 rotates img 270° clockwise (90° counter-clockwise).
func Rotate270(img image.Image) *image.RGBA {
	src := img.Bounds()
	dst := image.NewRGBA(image.Rect(0, 0, src.Dy(), src.Dx()))
	for y := src.Min.Y; y < src.Max.Y; y++ {
		for x := src.Min.X; x < src.Max.X; x++ {
			dst.Set(y-src.Min.Y, src.Max.X-1-x, img.At(x, y))
		}
	}
	return dst
}

// Crop extracts the rectangle [x, y, x+w, y+h] from img.
func Crop(img image.Image, x, y, w, h int) (*image.RGBA, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("gallery: crop %dx%d: dimensions must be positive", w, h)
	}
	src := img.Bounds()
	rect := image.Rect(src.Min.X+x, src.Min.Y+y, src.Min.X+x+w, src.Min.Y+y+h)
	if !rect.In(src) {
		return nil, fmt.Errorf("gallery: crop %v outside image bounds %v", rect, src)
	}
	dst := image.NewRGBA(image.Rect(0, 0, w, h))
	for dy := 0; dy < h; dy++ {
		for dx := 0; dx < w; dx++ {
			dst.Set(dx, dy, img.At(rect.Min.X+dx, rect.Min.Y+dy))
		}
	}
	return dst, nil
}

// Grayscale converts img to grayscale (luma weights per ITU-R BT.601).
func Grayscale(img image.Image) *image.RGBA {
	src := img.Bounds()
	dst := image.NewRGBA(image.Rect(0, 0, src.Dx(), src.Dy()))
	for y := src.Min.Y; y < src.Max.Y; y++ {
		for x := src.Min.X; x < src.Max.X; x++ {
			r, g, b, a := img.At(x, y).RGBA()
			luma := (299*r + 587*g + 114*b) / 1000
			dst.Set(x-src.Min.X, y-src.Min.Y, color.RGBA64{
				R: uint16(luma), G: uint16(luma), B: uint16(luma), A: uint16(a),
			})
		}
	}
	return dst
}

// EditOp names a photo editing operation.
type EditOp string

// Editing operations (Section VI: "resize, rotate, crop, etc.").
const (
	OpResize    EditOp = "resize"
	OpRotate90  EditOp = "rotate90"
	OpRotate180 EditOp = "rotate180"
	OpRotate270 EditOp = "rotate270"
	OpCrop      EditOp = "crop"
	OpGrayscale EditOp = "grayscale"
)

// EditParams parameterizes an edit.
type EditParams struct {
	Op EditOp `json:"op"`
	// Resize target / crop size.
	Width  int `json:"width,omitempty"`
	Height int `json:"height,omitempty"`
	// Crop origin.
	X int `json:"x,omitempty"`
	Y int `json:"y,omitempty"`
}

// ApplyEdit runs one editing operation on PNG/JPEG/GIF bytes and returns
// PNG bytes.
func ApplyEdit(data []byte, p EditParams) ([]byte, error) {
	img, err := Decode(data)
	if err != nil {
		return nil, err
	}
	var out image.Image
	switch p.Op {
	case OpResize:
		out, err = Resize(img, p.Width, p.Height)
	case OpRotate90:
		out = Rotate90(img)
	case OpRotate180:
		out = Rotate180(img)
	case OpRotate270:
		out = Rotate270(img)
	case OpCrop:
		out, err = Crop(img, p.X, p.Y, p.Width, p.Height)
	case OpGrayscale:
		out = Grayscale(img)
	default:
		return nil, fmt.Errorf("gallery: unknown edit op %q", p.Op)
	}
	if err != nil {
		return nil, err
	}
	return EncodePNG(out)
}
