package am

import (
	"errors"
	"fmt"
	"time"

	"umac/internal/audit"
	"umac/internal/core"
	"umac/internal/policy"
	"umac/internal/token"
)

// This file is the policy decision point (PDP) and token service: the
// Fig. 5 token endpoint and the Fig. 6 decision endpoint.

// IssueToken evaluates a Requester's access request and, on permit, mints
// an authorization token bound to (requester, host, realm) — Fig. 5. The
// outcomes map to the paper's Section V.D extensions:
//
//   - permit              → TokenResponse with the token;
//   - consent required    → TokenResponse with PendingConsent (asynchronous
//     Requester↔AM interaction);
//   - terms unsatisfied   → TokenResponse listing RequiredTerms;
//   - deny                → core.ErrAccessDenied.
func (a *AM) IssueToken(req core.TokenRequest) (core.TokenResponse, error) {
	a.trace(core.PhaseObtainingToken, "requester:"+string(req.Requester), "am:"+a.name,
		"token-request", fmt.Sprintf("%s/%s %s", req.Host, req.Realm, req.Action))
	realm, err := a.LookupRealm(req.Host, req.Realm)
	if err != nil {
		return core.TokenResponse{}, err
	}
	release, err := a.gateOwner(realm.Owner)
	if err != nil {
		return core.TokenResponse{}, err
	}
	defer release()
	res := a.evaluate(req, realm, false)
	switch {
	case res.Decision == core.DecisionPermit:
		return a.grantToken(req, realm, res)
	case res.RequireConsent:
		ticket, err := a.openConsent(req, realm)
		if err != nil {
			return core.TokenResponse{}, err
		}
		a.trace(core.PhaseObtainingToken, "am:"+a.name, "requester:"+string(req.Requester),
			"consent-pending", ticket)
		return core.TokenResponse{PendingConsent: ticket}, nil
	case len(res.RequiredTerms) > 0:
		a.audit.Append(audit.Event{
			Type: audit.EventTokenRefused, Owner: realm.Owner, Host: req.Host,
			Realm: req.Realm, Resource: req.Resource, Requester: req.Requester,
			Subject: req.Subject, Action: req.Action,
			Detail: fmt.Sprintf("terms required: %v", res.RequiredTerms),
		})
		a.trace(core.PhaseObtainingToken, "am:"+a.name, "requester:"+string(req.Requester),
			"terms-required", fmt.Sprintf("%v", res.RequiredTerms))
		return core.TokenResponse{RequiredTerms: dedupe(res.RequiredTerms)}, nil
	default:
		a.audit.Append(audit.Event{
			Type: audit.EventTokenRefused, Owner: realm.Owner, Host: req.Host,
			Realm: req.Realm, Resource: req.Resource, Requester: req.Requester,
			Subject: req.Subject, Action: req.Action, Detail: res.Reason,
		})
		a.trace(core.PhaseObtainingToken, "am:"+a.name, "requester:"+string(req.Requester),
			"token-refused", res.Reason)
		return core.TokenResponse{}, fmt.Errorf("%w: %s", core.ErrAccessDenied, res.Reason)
	}
}

// grantToken mints the token and records the grant context for decision-
// time re-evaluation.
func (a *AM) grantToken(req core.TokenRequest, realm Realm, res policy.Result) (core.TokenResponse, error) {
	tok, claims, err := a.tokens.Mint(req.Requester, req.Subject, req.Host, req.Realm)
	if err != nil {
		return core.TokenResponse{}, err
	}
	grant := grantRecord{
		Owner:     realm.Owner,
		Requester: req.Requester,
		Subject:   req.Subject,
		Claims:    req.Claims,
		// ConsentGranted stays false: this is the no-consent-needed path;
		// grantTokenWithConsent handles the consent-approved path.
	}
	if _, err := a.store.Put(kindGrant, claims.ID, grant); err != nil {
		return core.TokenResponse{}, fmt.Errorf("am: persist grant: %w", err)
	}
	a.audit.Append(audit.Event{
		Type: audit.EventTokenIssued, Owner: realm.Owner, Host: req.Host,
		Realm: req.Realm, Resource: req.Resource, Requester: req.Requester,
		Subject: req.Subject, Action: req.Action, Detail: claims.ID,
	})
	a.trace(core.PhaseObtainingToken, "am:"+a.name, "requester:"+string(req.Requester),
		"token-issued", claims.ID)
	return core.TokenResponse{Token: tok, Realm: req.Realm, ExpiresAt: claims.ExpiresAt}, nil
}

// grantTokenWithConsent is grantToken for the consent-approved path; the
// grant records that the owner consented so decision queries re-evaluate
// with ConsentGranted.
func (a *AM) grantTokenWithConsent(req core.TokenRequest, realm Realm) (core.TokenResponse, error) {
	tok, claims, err := a.tokens.Mint(req.Requester, req.Subject, req.Host, req.Realm)
	if err != nil {
		return core.TokenResponse{}, err
	}
	grant := grantRecord{
		Owner:          realm.Owner,
		Requester:      req.Requester,
		Subject:        req.Subject,
		Claims:         req.Claims,
		ConsentGranted: true,
	}
	if _, err := a.store.Put(kindGrant, claims.ID, grant); err != nil {
		return core.TokenResponse{}, fmt.Errorf("am: persist grant: %w", err)
	}
	a.audit.Append(audit.Event{
		Type: audit.EventTokenIssued, Owner: realm.Owner, Host: req.Host,
		Realm: req.Realm, Resource: req.Resource, Requester: req.Requester,
		Subject: req.Subject, Action: req.Action, Detail: claims.ID + " (consented)",
	})
	return core.TokenResponse{Token: tok, Realm: req.Realm, ExpiresAt: claims.ExpiresAt}, nil
}

// evaluate builds the policy request and runs the two-stage engine.
func (a *AM) evaluate(req core.TokenRequest, realm Realm, consent bool) policy.Result {
	preq := policy.Request{
		Subject:        req.Subject,
		Requester:      req.Requester,
		Action:         req.Action,
		Resource:       core.ResourceRef{Host: req.Host, Resource: req.Resource, Realm: req.Realm},
		Realm:          req.Realm,
		Owner:          realm.Owner,
		Claims:         req.Claims,
		ConsentGranted: consent,
	}
	if a.index == nil {
		general := a.generalPolicyFor(realm.Owner, req.Realm)
		specific := a.specificPolicyFor(realm.Owner, req.Host, req.Resource)
		return a.engine.Evaluate(preq, general, specific)
	}
	// The compiled index resolves both links without touching the store on
	// a hit and hands the engine pre-filtered candidate rules per action.
	general := a.compiledGeneral(realm.Owner, req.Realm)
	specific := a.compiledSpecific(realm.Owner, req.Host, req.Resource)
	return a.engine.EvaluateCompiled(preq, general, specific)
}

// decideCtx memoizes the lookups shared by the items of one batch decision
// query: realm resolution, token validation and grant-context recovery. A
// batch of N items for one page of resources typically carries one token and
// one realm, so the whole batch costs one validation and one realm fetch.
type decideCtx struct {
	realms map[core.RealmID]realmLookup
	tokens map[string]tokenLookup
	grants map[string]grantRecord
}

type realmLookup struct {
	realm Realm
	err   error
}

type tokenLookup struct {
	claims token.Claims
	err    error
}

func newDecideCtx() *decideCtx {
	return &decideCtx{
		realms: make(map[core.RealmID]realmLookup),
		tokens: make(map[string]tokenLookup),
		grants: make(map[string]grantRecord),
	}
}

func (a *AM) realmCached(ctx *decideCtx, host core.HostID, realm core.RealmID) (Realm, error) {
	if l, ok := ctx.realms[realm]; ok {
		return l.realm, l.err
	}
	r, err := a.LookupRealm(host, realm)
	ctx.realms[realm] = realmLookup{realm: r, err: err}
	return r, err
}

func (a *AM) tokenCached(ctx *decideCtx, tok string) (token.Claims, error) {
	if l, ok := ctx.tokens[tok]; ok {
		return l.claims, l.err
	}
	claims, err := a.tokens.Validate(tok)
	ctx.tokens[tok] = tokenLookup{claims: claims, err: err}
	return claims, err
}

func (a *AM) grantCached(ctx *decideCtx, claimID string) grantRecord {
	if g, ok := ctx.grants[claimID]; ok {
		return g
	}
	var grant grantRecord
	a.store.Get(kindGrant, claimID, &grant)
	ctx.grants[claimID] = grant
	return grant
}

// Decide answers a Host's decision query — Fig. 6. The pairingID is the
// authenticated channel identity established by httpsig; the query is
// rejected unless the pairing's Host matches the query's Host.
func (a *AM) Decide(pairingID string, q core.DecisionQuery) (core.DecisionResponse, error) {
	a.trace(core.PhaseObtainingDecision, "host:"+string(q.Host), "am:"+a.name,
		"decision-query", fmt.Sprintf("%s/%s %s", q.Realm, q.Resource, q.Action))
	pairing, err := a.GetPairing(pairingID)
	if err != nil {
		return core.DecisionResponse{}, err
	}
	if pairing.Host != q.Host {
		return core.DecisionResponse{}, fmt.Errorf("am: pairing %s belongs to host %q, query claims %q",
			pairingID, pairing.Host, q.Host)
	}
	return a.decideItem(newDecideCtx(), q)
}

// DecideBatch answers a batched decision query — N Fig. 6 queries in one
// signed round-trip. The pairing is authenticated once; realm lookups,
// token validations and grant fetches are memoized across items. Item-level
// failures (unknown realm, storage errors) deny that item with Error set
// instead of failing the batch, so one bad item cannot veto a page load.
func (a *AM) DecideBatch(pairingID string, q core.BatchDecisionQuery) (core.BatchDecisionResponse, error) {
	if len(q.Items) == 0 {
		return core.BatchDecisionResponse{}, fmt.Errorf("am: batch decision query carries no items")
	}
	if len(q.Items) > core.MaxBatchDecisionItems {
		return core.BatchDecisionResponse{}, fmt.Errorf("am: batch of %d items exceeds limit %d",
			len(q.Items), core.MaxBatchDecisionItems)
	}
	a.trace(core.PhaseObtainingDecision, "host:"+string(q.Host), "am:"+a.name,
		"decision-query-batch", fmt.Sprintf("%d items", len(q.Items)))
	pairing, err := a.GetPairing(pairingID)
	if err != nil {
		return core.BatchDecisionResponse{}, err
	}
	if pairing.Host != q.Host {
		return core.BatchDecisionResponse{}, fmt.Errorf("am: pairing %s belongs to host %q, query claims %q",
			pairingID, pairing.Host, q.Host)
	}
	ctx := newDecideCtx()
	resp := core.BatchDecisionResponse{Results: make([]core.BatchDecisionResult, len(q.Items))}
	for i, item := range q.Items {
		tok := item.Token
		if tok == "" {
			tok = q.Token
		}
		dec, err := a.decideItem(ctx, core.DecisionQuery{
			PairingID: pairingID,
			Host:      q.Host,
			Realm:     item.Realm,
			Resource:  item.Resource,
			Action:    item.Action,
			Token:     tok,
		})
		if err != nil {
			// wrong_shard vetoes the whole batch: the client must re-route
			// the page to the owning shard, and burying the routing hint in
			// an item-level string would hide it from the chase logic.
			var ae *core.APIError
			if errors.As(err, &ae) && ae.Code == core.CodeWrongShard {
				return core.BatchDecisionResponse{}, err
			}
			resp.Results[i] = core.BatchDecisionResult{
				DecisionResponse: core.DecisionResponse{Decision: core.DecisionDeny.String()},
				Error:            err.Error(),
			}
			continue
		}
		resp.Results[i] = core.BatchDecisionResult{DecisionResponse: dec}
	}
	return resp, nil
}

// decideItem evaluates one decision query for an already-authenticated
// pairing. ctx carries the batch-level memoization; single queries pass a
// fresh one.
func (a *AM) decideItem(ctx *decideCtx, q core.DecisionQuery) (core.DecisionResponse, error) {
	realm, err := a.realmCached(ctx, q.Host, q.Realm)
	if err != nil {
		return core.DecisionResponse{}, err
	}
	// A decision for a migrated-away owner must not be served from this
	// shard's (still-present, no-longer-authoritative) state: the client
	// chases the shard hint instead.
	if err := a.checkShard(realm.Owner); err != nil {
		return core.DecisionResponse{}, err
	}

	deny := func(reason string) core.DecisionResponse {
		a.auditDecision(realm, q, "", core.DecisionDeny, reason)
		return core.DecisionResponse{
			Decision:        core.DecisionDeny.String(),
			CacheTTLSeconds: 0, // denials from token problems are not cacheable
			Reason:          reason,
			TokenProblem:    true,
		}
	}

	claims, err := a.tokenCached(ctx, q.Token)
	if err != nil {
		if errors.Is(err, core.ErrTokenInvalid) {
			return deny("token invalid: " + err.Error()), nil
		}
		return core.DecisionResponse{}, err
	}
	if err := token.CheckScope(claims, "", q.Host, q.Realm); err != nil {
		return deny("token out of scope: " + err.Error()), nil
	}

	// Recover the grant context (claims presented, consent given) so the
	// re-evaluation reproduces the conditions under which the token was
	// issued.
	grant := a.grantCached(ctx, claims.ID)

	req := core.TokenRequest{
		Requester: claims.Requester,
		Subject:   claims.Subject,
		Host:      q.Host,
		Realm:     q.Realm,
		Resource:  q.Resource,
		Action:    q.Action,
		Claims:    grant.Claims,
	}
	res := a.evaluate(req, realm, grant.ConsentGranted)
	decision := core.DecisionDeny
	if res.Decision == core.DecisionPermit {
		decision = core.DecisionPermit
	}
	a.auditDecision(realm, q, claims.Requester, decision, res.Reason)
	a.trace(core.PhaseObtainingDecision, "am:"+a.name, "host:"+string(q.Host),
		"decision-response", decision.String())
	return core.DecisionResponse{
		Decision:        decision.String(),
		CacheTTLSeconds: a.cacheTTLSeconds(res),
		Reason:          res.Reason,
	}, nil
}

// cacheTTLSeconds converts an engine result's caching directive into the
// wire form: policy TTL if set, AM default otherwise, 0 if the policy
// forbids caching.
func (a *AM) cacheTTLSeconds(res policy.Result) int {
	switch {
	case res.CacheTTLSeconds < 0:
		return 0
	case res.CacheTTLSeconds > 0:
		return res.CacheTTLSeconds
	default:
		return int(a.cacheTTL / time.Second)
	}
}

// auditDecision records a decision event on the asynchronous audit
// pipeline: the hot path pays one buffered-channel send and the pipeline
// worker appends events to the log in batches, off the decision critical
// section. Readers (Audit(), the /audit endpoints) flush the pipeline
// first, so the log stays read-your-writes consistent.
func (a *AM) auditDecision(realm Realm, q core.DecisionQuery, requester core.RequesterID, d core.Decision, reason string) {
	a.auditPipe.Enqueue(audit.Event{
		Type: audit.EventDecision, Owner: realm.Owner, Host: q.Host,
		Realm: q.Realm, Resource: q.Resource, Requester: requester,
		Action: q.Action, Decision: d.String(), Detail: reason,
	})
}

func dedupe(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
