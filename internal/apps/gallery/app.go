package gallery

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"

	"umac/internal/baseline/localacl"
	"umac/internal/core"
	"umac/internal/identity"
	"umac/internal/pep"
	"umac/internal/requester"
	"umac/internal/store"
	"umac/internal/webutil"
)

// Gallery errors.
var (
	// ErrNoAlbum: the album does not exist.
	ErrNoAlbum = errors.New("gallery: no such album")
	// ErrNoPhoto: the photo does not exist.
	ErrNoPhoto = errors.New("gallery: no such photo")
)

// album is one user's photo album; the album name is the protection realm.
type album struct {
	photos map[string][]byte // name → PNG bytes
}

// App is the photo gallery application.
type App struct {
	HostID   core.HostID
	Enforcer *pep.Enforcer
	ACL      *localacl.Matrix
	Auth     identity.Authenticator

	mu     sync.RWMutex
	albums map[core.UserID]map[string]*album
}

// Config configures the gallery App.
type Config struct {
	HostID core.HostID
	Auth   identity.Authenticator
	Tracer *core.Tracer
	// PairingStore, when non-nil, persists AM pairings across restarts
	// (pass a WAL-backed store for crash durability).
	PairingStore *store.Store
}

// New constructs the gallery application.
func New(cfg Config) *App {
	auth := cfg.Auth
	if auth == nil {
		auth = identity.HeaderAuth{}
	}
	hostID := cfg.HostID
	if hostID == "" {
		hostID = "gallery"
	}
	return &App{
		HostID: hostID,
		Enforcer: pep.New(pep.Config{
			Host: hostID, Name: "Photo Gallery", Tracer: cfg.Tracer,
			Store: cfg.PairingStore,
		}),
		ACL:    &localacl.Matrix{},
		Auth:   auth,
		albums: make(map[core.UserID]map[string]*album),
	}
}

// CreateAlbum makes an empty album for owner.
func (a *App) CreateAlbum(owner core.UserID, name string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.albums[owner] == nil {
		a.albums[owner] = make(map[string]*album)
	}
	if a.albums[owner][name] == nil {
		a.albums[owner][name] = &album{photos: make(map[string][]byte)}
	}
}

// AddPhoto stores a photo (any decodable format; stored as-is) in an album,
// creating the album if needed.
func (a *App) AddPhoto(owner core.UserID, albumName, photoName string, data []byte) error {
	if _, err := Decode(data); err != nil {
		return err
	}
	a.CreateAlbum(owner, albumName)
	a.mu.Lock()
	defer a.mu.Unlock()
	a.albums[owner][albumName].photos[photoName] = append([]byte(nil), data...)
	return nil
}

// Photo retrieves a photo's bytes.
func (a *App) Photo(owner core.UserID, albumName, photoName string) ([]byte, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	alb := a.albums[owner][albumName]
	if alb == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoAlbum, albumName)
	}
	data, ok := alb.photos[photoName]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNoPhoto, albumName, photoName)
	}
	return append([]byte(nil), data...), nil
}

// Photos lists an album's photo names, sorted.
func (a *App) Photos(owner core.UserID, albumName string) ([]string, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	alb := a.albums[owner][albumName]
	if alb == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoAlbum, albumName)
	}
	out := make([]string, 0, len(alb.photos))
	for name := range alb.photos {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// Edit applies an editing operation to a photo in place.
func (a *App) Edit(owner core.UserID, albumName, photoName string, p EditParams) error {
	data, err := a.Photo(owner, albumName, photoName)
	if err != nil {
		return err
	}
	edited, err := ApplyEdit(data, p)
	if err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.albums[owner][albumName].photos[photoName] = edited
	return nil
}

// resourceID names a photo as a protocol resource: "album/photo".
func resourceID(albumName, photoName string) core.ResourceID {
	return core.ResourceID(albumName + "/" + photoName)
}

// authorize enforces access, dispatching between delegated and built-in
// modes exactly like the storage app.
func (a *App) authorize(w http.ResponseWriter, r *http.Request, owner core.UserID, albumName, photoName string, action core.Action) bool {
	res := resourceID(albumName, photoName)
	if a.Enforcer.Delegated(owner) {
		return a.Enforcer.Require(w, r, owner, core.RealmID(albumName), res, action)
	}
	subject, _ := a.Auth.Authenticate(r)
	if a.ACL.Check(owner, res, subject, action) {
		return true
	}
	webutil.WriteErrorf(w, http.StatusForbidden, "gallery: %s may not %s %s", subject, action, res)
	return false
}

// Handler returns the gallery's HTTP surface:
//
//	GET  /albums/{owner}/{album}                    list photos (list)
//	GET  /photos/{owner}/{album}/{photo}            fetch photo (read)
//	PUT  /photos/{owner}/{album}/{photo}            upload photo (write)
//	POST /photos/{owner}/{album}/{photo}/edit       edit photo (write)
//	POST /import                                    act as Requester: load a
//	                                                photo from another Host
//	/umac/pair/callback                             pairing leg (Fig. 3)
func (a *App) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/umac/pair/callback", a.Enforcer.HandlePairCallback)
	mux.HandleFunc("POST /umac/invalidate", a.Enforcer.HandleInvalidate)

	mux.HandleFunc("GET /albums/{owner}/{album}", func(w http.ResponseWriter, r *http.Request) {
		owner := core.UserID(r.PathValue("owner"))
		albumName := r.PathValue("album")
		if !a.authorize(w, r, owner, albumName, "", core.ActionList) {
			return
		}
		photos, err := a.Photos(owner, albumName)
		if err != nil {
			webutil.WriteError(w, http.StatusNotFound, err)
			return
		}
		webutil.WriteJSON(w, http.StatusOK, photos)
	})

	mux.HandleFunc("GET /photos/{owner}/{album}/{photo}", func(w http.ResponseWriter, r *http.Request) {
		owner := core.UserID(r.PathValue("owner"))
		albumName, photoName := r.PathValue("album"), r.PathValue("photo")
		if !a.authorize(w, r, owner, albumName, photoName, core.ActionRead) {
			return
		}
		data, err := a.Photo(owner, albumName, photoName)
		if err != nil {
			webutil.WriteError(w, http.StatusNotFound, err)
			return
		}
		w.Header().Set("Content-Type", "image/png")
		w.Write(data)
	})

	mux.HandleFunc("PUT /photos/{owner}/{album}/{photo}", func(w http.ResponseWriter, r *http.Request) {
		owner := core.UserID(r.PathValue("owner"))
		albumName, photoName := r.PathValue("album"), r.PathValue("photo")
		if !a.authorize(w, r, owner, albumName, photoName, core.ActionWrite) {
			return
		}
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, webutil.MaxBodyBytes))
		if err != nil {
			webutil.WriteError(w, http.StatusBadRequest, err)
			return
		}
		if err := a.AddPhoto(owner, albumName, photoName, data); err != nil {
			webutil.WriteError(w, http.StatusBadRequest, err)
			return
		}
		webutil.WriteJSON(w, http.StatusOK, map[string]any{"stored": photoName, "bytes": len(data)})
	})

	mux.HandleFunc("POST /photos/{owner}/{album}/{photo}/edit", func(w http.ResponseWriter, r *http.Request) {
		owner := core.UserID(r.PathValue("owner"))
		albumName, photoName := r.PathValue("album"), r.PathValue("photo")
		if !a.authorize(w, r, owner, albumName, photoName, core.ActionWrite) {
			return
		}
		var p EditParams
		if err := webutil.ReadJSON(r, &p); err != nil {
			webutil.WriteError(w, http.StatusBadRequest, err)
			return
		}
		if err := a.Edit(owner, albumName, photoName, p); err != nil {
			webutil.WriteError(w, http.StatusBadRequest, err)
			return
		}
		webutil.WriteJSON(w, http.StatusOK, map[string]string{"edited": photoName, "op": string(p.Op)})
	})

	mux.HandleFunc("POST /import", a.handleImport)
	return mux
}

// importRequest asks the gallery to load a photo from another Host (e.g.
// the storage service) — Section VI: "users can store photos in their
// online storage service and can load them to the photo gallery."
type importRequest struct {
	URL   string `json:"url"`
	Album string `json:"album"`
	Photo string `json:"photo"`
}

func (a *App) handleImport(w http.ResponseWriter, r *http.Request) {
	user, ok := a.Auth.Authenticate(r)
	if !ok {
		webutil.WriteErrorf(w, http.StatusUnauthorized, "gallery: login required for import")
		return
	}
	var req importRequest
	if err := webutil.ReadJSON(r, &req); err != nil {
		webutil.WriteError(w, http.StatusBadRequest, err)
		return
	}
	if req.URL == "" || req.Album == "" || req.Photo == "" {
		webutil.WriteErrorf(w, http.StatusBadRequest, "gallery: url, album and photo required")
		return
	}
	client := requester.New(requester.Config{
		ID:      core.RequesterID(a.HostID),
		Subject: user,
	})
	data, err := client.Fetch(req.URL, core.ActionRead)
	if err != nil {
		status := http.StatusBadGateway
		if errors.Is(err, core.ErrAccessDenied) {
			status = http.StatusForbidden
		}
		webutil.WriteError(w, status, fmt.Errorf("gallery: import fetch: %w", err))
		return
	}
	if err := a.AddPhoto(user, req.Album, req.Photo, data); err != nil {
		webutil.WriteError(w, http.StatusBadRequest, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, map[string]any{
		"imported": req.Album + "/" + req.Photo, "bytes": len(data),
	})
}

// PhotoURL builds the canonical URL of a photo.
func PhotoURL(baseURL string, owner core.UserID, albumName, photoName string) string {
	return strings.TrimSuffix(baseURL, "/") + "/photos/" + string(owner) + "/" + albumName + "/" + photoName
}
