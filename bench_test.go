// Benchmark harness for the reproduction: one benchmark per figure of the
// paper (Figs. 1-6 — the paper's evaluation is qualitative, so each flow is
// reproduced as a measured protocol execution on the in-process HTTP
// substrate), plus the model-comparison and scaling experiments derived
// from Sections III, V and VIII. EXPERIMENTS.md records the results.
//
// Run with: go test -bench=. -benchmem
package umac_test

import (
	"bytes"
	"fmt"
	"image"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"umac/internal/am"
	"umac/internal/amclient"
	appgallery "umac/internal/apps/gallery"
	appstorage "umac/internal/apps/storage"
	"umac/internal/baseline/localacl"
	"umac/internal/baseline/pullmodel"
	"umac/internal/baseline/umastate"
	"umac/internal/cluster"
	"umac/internal/core"
	"umac/internal/httpsig"
	"umac/internal/loadgen"
	"umac/internal/pep"
	"umac/internal/policy"
	"umac/internal/rebalance"
	"umac/internal/requester"
	"umac/internal/sim"
	"umac/internal/store"
	"umac/internal/token"
)

// benchWorld builds the standard fixture: bob's host with n resources in
// realm "travel", paired, protected, friends-read policy linked, alice in
// friends.
func benchWorld(b *testing.B, n int) (*sim.World, *sim.SimpleHost) {
	b.Helper()
	w := sim.NewWorld()
	b.Cleanup(w.Close)
	h := w.AddHost("webpics")
	ids := make([]core.ResourceID, n)
	for i := 0; i < n; i++ {
		ids[i] = core.ResourceID(fmt.Sprintf("photo-%04d", i))
		h.AddResource("bob", "travel", ids[i], []byte("bench content"))
	}
	bob := sim.NewUserAgent("bob")
	if err := bob.PairHost(h, w.AMServer.URL); err != nil {
		b.Fatal(err)
	}
	if err := h.Enforcer.Protect("bob", "travel", ids, ""); err != nil {
		b.Fatal(err)
	}
	p, err := w.AM.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectGroup, Name: "friends"}, {Type: policy.SubjectOwner}},
			Actions:  []core.Action{core.ActionRead, core.ActionList},
		}},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := w.AM.LinkGeneral("bob", "travel", p.ID); err != nil {
		b.Fatal(err)
	}
	if err := w.AM.AddGroupMember("bob", "bob", "friends", "alice"); err != nil {
		b.Fatal(err)
	}
	return w, h
}

// --- E1 / Fig. 1: the full architecture round-trip ---
// store resource → protect → compose policy leg → token → access →
// decision → enforce, once per iteration with a fresh realm.
func BenchmarkFig1ArchitectureRoundTrip(b *testing.B) {
	w, h := benchWorld(b, 1)
	pol, err := w.AM.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectEveryone}},
		}},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		realm := core.RealmID(fmt.Sprintf("realm-%d", i))
		res := core.ResourceID(fmt.Sprintf("res-%d", i))
		h.AddResource("bob", realm, res, []byte("x")) // (1) store
		if err := h.Enforcer.Protect("bob", realm, []core.ResourceID{res}, ""); err != nil {
			b.Fatal(err)
		}
		if err := w.AM.LinkGeneral("bob", realm, pol.ID); err != nil { // (2) policy
			b.Fatal(err)
		}
		client := requester.New(requester.Config{ID: "alice-browser", Subject: "alice"})
		if _, err := client.Fetch(h.ResourceURL(res), core.ActionRead); err != nil { // (3)-(6)
			b.Fatal(err)
		}
	}
}

// --- E2 / Fig. 2: full first-access protocol ---
// Fresh requester and cold host cache per iteration: 401 referral → token
// request/issue → retry with token → decision query → serve.
func BenchmarkFig2FullProtocolFirstAccess(b *testing.B) {
	_, h := benchWorld(b, 1)
	url := h.ResourceURL("photo-0000")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Enforcer.Cache().Invalidate()
		client := requester.New(requester.Config{ID: "alice-browser", Subject: "alice"})
		if _, err := client.Fetch(url, core.ActionRead); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7 / §V.B.6: subsequent access with cached decision ---
// Warm token and warm decision cache: the Host enforces locally.
func BenchmarkFig2SubsequentAccessCached(b *testing.B) {
	_, h := benchWorld(b, 1)
	url := h.ResourceURL("photo-0000")
	client := requester.New(requester.Config{ID: "alice-browser", Subject: "alice"})
	if _, err := client.Fetch(url, core.ActionRead); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Fetch(url, core.ActionRead); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E3 / Fig. 3: trust establishment (pairing handshake) ---
// The full browser-redirect + code-exchange flow per iteration.
func BenchmarkFig3TrustEstablishment(b *testing.B) {
	w := sim.NewWorld()
	b.Cleanup(w.Close)
	h := w.AddHost("webpics")
	bob := sim.NewUserAgent("bob")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bob.PairHost(h, w.AMServer.URL); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4 / Fig. 4: policy composition and linking ---
func BenchmarkFig4PolicyComposition(b *testing.B) {
	w, _ := benchWorld(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := w.AM.CreatePolicy("bob", policy.Policy{
			Owner: "bob", Name: fmt.Sprintf("p-%d", i), Kind: policy.KindGeneral,
			Rules: []policy.Rule{{
				Effect:   policy.EffectPermit,
				Subjects: []policy.Subject{{Type: policy.SubjectGroup, Name: "friends"}},
				Actions:  []core.Action{core.ActionRead},
			}},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := w.AM.LinkGeneral("bob", core.RealmID(fmt.Sprintf("r-%d", i)), p.ID); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E5 / Fig. 5: authorization-token issuance over HTTP ---
func BenchmarkFig5ObtainAuthorizationToken(b *testing.B) {
	w, _ := benchWorld(b, 1)
	client := requester.New(requester.Config{ID: "alice-browser", Subject: "alice"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.ObtainToken(w.AMServer.URL, "webpics", "travel", "photo-0000", core.ActionRead); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6 / Fig. 6: token-bearing access with decision query ---
// Warm token, cold decision cache: each access costs exactly one signed
// Host→AM decision query.
func BenchmarkFig6AccessWithDecisionQuery(b *testing.B) {
	_, h := benchWorld(b, 1)
	url := h.ResourceURL("photo-0000")
	client := requester.New(requester.Config{ID: "alice-browser", Subject: "alice"})
	if _, err := client.Fetch(url, core.ActionRead); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Enforcer.Cache().Invalidate()
		if _, err := client.Fetch(url, core.ActionRead); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E9: per-access cost of each protocol model at steady state ---
func BenchmarkModelComparison(b *testing.B) {
	b.Run("push-token-cached", func(b *testing.B) {
		_, h := benchWorld(b, 1)
		url := h.ResourceURL("photo-0000")
		client := requester.New(requester.Config{ID: "alice-browser", Subject: "alice"})
		if _, err := client.Fetch(url, core.ActionRead); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := client.Fetch(url, core.ActionRead); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pull-per-access", func(b *testing.B) {
		w, h := benchWorld(b, 1)
		pairing, _ := h.Enforcer.PairingFor("bob")
		pull := pullmodel.New(h.ID, nil, nil)
		_ = w
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ok, err := pull.Check(pairing, "alice", "alice-browser", "travel", "photo-0000", core.ActionRead)
			if err != nil || !ok {
				b.Fatalf("ok=%v err=%v", ok, err)
			}
		}
	})
	b.Run("uma-state-per-access", func(b *testing.B) {
		w, h := benchWorld(b, 1)
		pairing, _ := h.Enforcer.PairingFor("bob")
		rc := &umastate.RequesterClient{ID: "alice-browser", Subject: "alice"}
		handle, err := rc.EstablishState(w.AMServer.URL, h.ID, "travel", "photo-0000", core.ActionRead)
		if err != nil {
			b.Fatal(err)
		}
		enf := umastate.New(h.ID, nil, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ok, err := enf.Check(pairing, handle, "travel", "photo-0000", core.ActionRead)
			if err != nil || !ok {
				b.Fatalf("ok=%v err=%v", ok, err)
			}
		}
	})
	b.Run("local-acl", func(b *testing.B) {
		var m localacl.Matrix
		m.Grant("bob", "photo-0000", "alice", core.ActionRead)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !m.Check("bob", "photo-0000", "alice", core.ActionRead) {
				b.Fatal("denied")
			}
		}
	})
}

// --- E8: policy engine micro-benchmarks ---
func BenchmarkPolicyEngineEvaluate(b *testing.B) {
	for _, rules := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("rules-%d", rules), func(b *testing.B) {
			p := &policy.Policy{ID: "p", Owner: "bob", Kind: policy.KindGeneral}
			for i := 0; i < rules-1; i++ {
				p.Rules = append(p.Rules, policy.Rule{
					Effect:   policy.EffectPermit,
					Subjects: []policy.Subject{{Type: policy.SubjectUser, Name: fmt.Sprintf("user-%d", i)}},
					Actions:  []core.Action{core.ActionWrite},
				})
			}
			p.Rules = append(p.Rules, policy.Rule{
				Effect:   policy.EffectPermit,
				Subjects: []policy.Subject{{Type: policy.SubjectUser, Name: "alice"}},
				Actions:  []core.Action{core.ActionRead},
			})
			e := policy.NewEngine(nil)
			req := policy.Request{
				Subject: "alice", Action: core.ActionRead, Owner: "bob", Realm: "travel",
				Resource: core.ResourceRef{Host: "h", Resource: "r"},
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res := e.Evaluate(req, p, nil); res.Decision != core.DecisionPermit {
					b.Fatal("deny")
				}
			}
		})
	}
}

// BenchmarkPolicyEngineGroupSize verifies membership checks stay O(1) in
// group size (hash-set directory).
func BenchmarkPolicyEngineGroupSize(b *testing.B) {
	for _, size := range []int{10, 1000, 100000} {
		b.Run(fmt.Sprintf("members-%d", size), func(b *testing.B) {
			var dir policy.Directory
			for i := 0; i < size; i++ {
				dir.Add("bob", "friends", core.UserID(fmt.Sprintf("user-%d", i)))
			}
			e := policy.NewEngine(&dir)
			p := &policy.Policy{
				ID: "p", Owner: "bob", Kind: policy.KindGeneral,
				Rules: []policy.Rule{{
					Effect:   policy.EffectPermit,
					Subjects: []policy.Subject{{Type: policy.SubjectGroup, Name: "friends"}},
				}},
			}
			req := policy.Request{
				Subject: core.UserID(fmt.Sprintf("user-%d", size-1)),
				Action:  core.ActionRead, Owner: "bob", Realm: "travel",
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res := e.Evaluate(req, p, nil); res.Decision != core.DecisionPermit {
					b.Fatal("deny")
				}
			}
		})
	}
}

// BenchmarkAMDecideTotalPolicies shows decision cost is independent of the
// total number of stored policies (only linked policies are evaluated).
func BenchmarkAMDecideTotalPolicies(b *testing.B) {
	for _, total := range []int{1, 100, 1000} {
		b.Run(fmt.Sprintf("stored-%d", total), func(b *testing.B) {
			w, h := benchWorld(b, 1)
			for i := 0; i < total; i++ {
				_, err := w.AM.CreatePolicy("bob", policy.Policy{
					Owner: "bob", Name: fmt.Sprintf("noise-%d", i), Kind: policy.KindSpecific,
					Rules: []policy.Rule{{Effect: policy.EffectDeny, Subjects: []policy.Subject{{Type: policy.SubjectEveryone}}}},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			pairing, _ := h.Enforcer.PairingFor("bob")
			tok, err := w.AM.IssueToken(core.TokenRequest{
				Requester: "alice-browser", Subject: "alice", Host: "webpics",
				Realm: "travel", Resource: "photo-0000", Action: core.ActionRead,
			})
			if err != nil {
				b.Fatal(err)
			}
			q := core.DecisionQuery{
				Host: "webpics", Realm: "travel", Resource: "photo-0000",
				Action: core.ActionRead, Token: tok.Token,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dec, err := w.AM.Decide(pairing.PairingID, q)
				if err != nil || !dec.Permit() {
					b.Fatalf("dec=%+v err=%v", dec, err)
				}
			}
		})
	}
}

// --- E10: consolidated audit summary over a growing event log ---
func BenchmarkAuditConsolidatedSummary(b *testing.B) {
	for _, events := range []int{100, 10000} {
		b.Run(fmt.Sprintf("events-%d", events), func(b *testing.B) {
			w, h := benchWorld(b, 1)
			pairing, _ := h.Enforcer.PairingFor("bob")
			tok, err := w.AM.IssueToken(core.TokenRequest{
				Requester: "alice-browser", Subject: "alice", Host: "webpics",
				Realm: "travel", Resource: "photo-0000", Action: core.ActionRead,
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < events; i++ {
				w.AM.Decide(pairing.PairingID, core.DecisionQuery{
					Host: "webpics", Realm: "travel", Resource: "photo-0000",
					Action: core.ActionRead, Token: tok.Token,
				})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := w.AM.Audit().Summarize("bob")
				if s.PermitCount == 0 {
					b.Fatal("empty summary")
				}
			}
		})
	}
}

// --- E11: consent and terms flows ---
func BenchmarkConsentFlow(b *testing.B) {
	w, h := benchWorld(b, 1)
	h.AddResource("bob", "private", "diary", []byte("x"))
	if err := h.Enforcer.Protect("bob", "private", []core.ResourceID{"diary"}, ""); err != nil {
		b.Fatal(err)
	}
	p, err := w.AM.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:     policy.EffectPermit,
			Subjects:   []policy.Subject{{Type: policy.SubjectEveryone}},
			Conditions: []policy.Condition{{Type: policy.CondRequireConsent}},
		}},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := w.AM.LinkGeneral("bob", "private", p.ID); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := w.AM.IssueToken(core.TokenRequest{
			Requester: "editor", Subject: "evelyn", Host: "webpics",
			Realm: "private", Resource: "diary", Action: core.ActionRead,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := w.AM.ResolveConsent("bob", resp.PendingConsent, true); err != nil {
			b.Fatal(err)
		}
		st, err := w.AM.ConsentStatus(resp.PendingConsent)
		if err != nil || st.Token == "" {
			b.Fatalf("st=%+v err=%v", st, err)
		}
	}
}

func BenchmarkTermsPaymentFlow(b *testing.B) {
	w, h := benchWorld(b, 1)
	h.AddResource("bob", "shop", "print", []byte("x"))
	if err := h.Enforcer.Protect("bob", "shop", []core.ResourceID{"print"}, ""); err != nil {
		b.Fatal(err)
	}
	p, err := w.AM.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:     policy.EffectPermit,
			Subjects:   []policy.Subject{{Type: policy.SubjectEveryone}},
			Conditions: []policy.Condition{{Type: policy.CondRequireClaim, Claim: "payment"}},
		}},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := w.AM.LinkGeneral("bob", "shop", p.ID); err != nil {
		b.Fatal(err)
	}
	req := core.TokenRequest{
		Requester: "kiosk", Subject: "carol", Host: "webpics",
		Realm: "shop", Resource: "print", Action: core.ActionRead,
		Claims: map[string]string{"payment": "rcpt"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := w.AM.IssueToken(req)
		if err != nil || resp.Token == "" {
			b.Fatalf("resp=%+v err=%v", resp, err)
		}
	}
}

// --- E12: cross-Host access — the gallery imports a photo from the
// storage service, acting as a Requester under its own application
// identity (Section VI).
func BenchmarkCrossHostPhotoLoad(b *testing.B) {
	w := sim.NewWorld()
	b.Cleanup(w.Close)

	st := appstorage.New(appstorage.Config{HostID: "storage", Tracer: w.Tracer})
	stSrv := httptest.NewServer(st.Handler())
	b.Cleanup(stSrv.Close)
	st.Enforcer.SetBaseURL(stSrv.URL)

	// A small real PNG in bob's travel directory.
	img := image.NewRGBA(image.Rect(0, 0, 16, 16))
	png, err := appgallery.EncodePNG(img)
	if err != nil {
		b.Fatal(err)
	}
	if err := st.Tree("bob").Put("/travel/pic.png", png); err != nil {
		b.Fatal(err)
	}

	bob := sim.NewUserAgent("bob")
	if err := bob.PairEnforcer(st.Enforcer, w.AMServer.URL); err != nil {
		b.Fatal(err)
	}
	if err := st.Enforcer.Protect("bob", "travel", nil, ""); err != nil {
		b.Fatal(err)
	}
	p, err := w.AM.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectRequester, Name: "gallery"}},
			Actions:  []core.Action{core.ActionRead},
		}},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := w.AM.LinkGeneral("bob", "travel", p.ID); err != nil {
		b.Fatal(err)
	}

	// The gallery-side requester client (what /import uses internally).
	client := requester.New(requester.Config{ID: "gallery", Subject: "bob"})
	url := appstorage.FileURL(stSrv.URL, "bob", "/travel/pic.png")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Fetch(url, core.ActionRead); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate micro-benchmarks ---

func BenchmarkTokenMint(b *testing.B) {
	s := token.NewService([]byte("bench-key-0123456789abcdefghijkl"), time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Mint("req", "sub", "host", "realm"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTokenValidate(b *testing.B) {
	s := token.NewService([]byte("bench-key-0123456789abcdefghijkl"), time.Hour)
	tok, _, err := s.Mint("req", "sub", "host", "realm")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Validate(tok); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHTTPSigSignVerify(b *testing.B) {
	v := httpsig.NewVerifier(httpsig.SecretSourceFunc(func(string) (string, bool) {
		return "secret", true
	}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req, _ := http.NewRequest(http.MethodPost, "http://am/api/decision", nil)
		if err := httpsig.Sign(req, "pair", "secret"); err != nil {
			b.Fatal(err)
		}
		if _, err := v.Verify(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStorageFSPutGet(b *testing.B) {
	var fs appstorage.FS
	content := bytes.Repeat([]byte("x"), 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := fmt.Sprintf("/travel/%d/file.bin", i%64)
		if err := fs.Put(path, content); err != nil {
			b.Fatal(err)
		}
		if _, err := fs.Get(path); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGalleryEditRotate(b *testing.B) {
	img := image.NewRGBA(image.Rect(0, 0, 128, 128))
	data, err := appgallery.EncodePNG(img)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := appgallery.ApplyEdit(data, appgallery.EditParams{Op: appgallery.OpRotate90}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E13: datastore substrate — shard striping, WAL, recovery ---

// benchEntity is the payload written in store benchmarks: roughly the size
// of a policy link or pairing record.
type benchEntity struct {
	Owner string `json:"owner"`
	Realm string `json:"realm"`
	Seq   int    `json:"seq"`
}

// BenchmarkStoreShardedMixedRW drives concurrent readers+writers across the
// lock-striped shards of a memory store (the AM's hot path: policy lookups
// interleaved with pairing/token writes).
func BenchmarkStoreShardedMixedRW(b *testing.B) {
	for _, bench := range []struct {
		name       string
		writeEvery int // 1 write per N ops
	}{
		{"read-heavy-90-10", 10},
		{"write-heavy-50-50", 2},
	} {
		b.Run(bench.name, func(b *testing.B) {
			recordBench(b)
			s := store.New()
			const keys = 16384
			for i := 0; i < keys; i++ {
				if _, err := s.Put("link", fmt.Sprintf("k%05d", i), benchEntity{Owner: "bob", Seq: i}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				var e benchEntity
				for pb.Next() {
					key := fmt.Sprintf("k%05d", i%keys)
					if i%bench.writeEvery == 0 {
						if _, err := s.Put("link", key, benchEntity{Owner: "bob", Seq: i}); err != nil {
							b.Fatal(err)
						}
					} else {
						if _, err := s.Get("link", key, &e); err != nil {
							b.Fatal(err)
						}
					}
					i++
				}
			})
		})
	}
}

// BenchmarkStoreWALAppend measures acknowledged-durable write throughput:
// every Put is on disk (in the page cache; fsync variant forces the platter)
// before it returns.
func BenchmarkStoreWALAppend(b *testing.B) {
	run := func(b *testing.B, opts ...store.Option) {
		s, err := store.Open(filepath.Join(b.TempDir(), "state.json"), opts...)
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Put("link", fmt.Sprintf("k%06d", i), benchEntity{Owner: "bob", Seq: i}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("buffered", func(b *testing.B) { recordBench(b); run(b) })
	b.Run("parallel", func(b *testing.B) {
		recordBench(b)
		s, err := store.Open(filepath.Join(b.TempDir(), "state.json"))
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, err := s.Put("link", fmt.Sprintf("w%p-%d", pb, i), benchEntity{Seq: i}); err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
	})
	b.Run("fsync", func(b *testing.B) { recordBench(b); run(b, store.WithFsync()) })
}

// BenchmarkStoreGroupCommit measures fsynced write throughput as writer
// parallelism grows. Every Put is durable before it returns (WithFsync),
// but concurrent writers are group-committed: the committer lands whatever
// queued during the previous batch's fsync with a single write and a
// single fsync, so ns/op at writers-16 should sit far below the serial
// per-write-fsync baseline (BenchmarkStoreWALAppend/fsync). On a
// multi-core box RunParallel spawns GOMAXPROCS×parallelism goroutines, so
// writer counts are exact only where GOMAXPROCS divides them (on the 1-CPU
// benchmark container they always are).
func BenchmarkStoreGroupCommit(b *testing.B) {
	gomax := runtime.GOMAXPROCS(0)
	for _, writers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("writers-%d", writers), func(b *testing.B) {
			recordBench(b)
			s, err := store.Open(filepath.Join(b.TempDir(), "state.json"), store.WithFsync())
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			par := writers / gomax
			if par < 1 {
				par = 1
			}
			b.SetParallelism(par)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, err := s.Put("link", fmt.Sprintf("w%p-%d", pb, i), benchEntity{Seq: i}); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
		})
	}
}

// BenchmarkStoreRecovery measures Open (snapshot load + WAL replay) against
// a log of acknowledged-but-never-snapshot writes: the crash-recovery cost
// as a function of log size.
func BenchmarkStoreRecovery(b *testing.B) {
	for _, records := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("wal-records-%d", records), func(b *testing.B) {
			recordBench(b)
			path := filepath.Join(b.TempDir(), "state.json")
			s, err := store.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < records; i++ {
				if _, err := s.Put("link", fmt.Sprintf("k%06d", i), benchEntity{Owner: "bob", Seq: i}); err != nil {
					b.Fatal(err)
				}
			}
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := store.Open(path)
				if err != nil {
					b.Fatal(err)
				}
				if r.Count("link") != records {
					b.Fatal("incomplete replay")
				}
				if err := r.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreSnapshotCompaction measures the compaction point itself:
// snapshotting a populated store and truncating its WAL.
func BenchmarkStoreSnapshotCompaction(b *testing.B) {
	recordBench(b)
	path := filepath.Join(b.TempDir(), "state.json")
	s, err := store.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10000; i++ {
		if _, err := s.Put("link", fmt.Sprintf("k%06d", i), benchEntity{Owner: "bob", Seq: i}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Put("link", "dirty", benchEntity{Seq: i}); err != nil {
			b.Fatal(err)
		}
		if err := s.Snapshot(path); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E14: the batched decision path and scoped cache invalidation ---

// decisionBenchFixture builds the batch-bench world: n readable resources,
// a realm token for alice, and the request presenting it.
func decisionBenchFixture(b *testing.B, n int) (*sim.World, *sim.SimpleHost, []pep.ResourceAction, *http.Request) {
	b.Helper()
	w, h := benchWorld(b, n)
	pairs := make([]pep.ResourceAction, n)
	for i := 0; i < n; i++ {
		pairs[i] = pep.ResourceAction{Resource: core.ResourceID(fmt.Sprintf("photo-%04d", i)), Action: core.ActionRead}
	}
	tok, err := w.AM.IssueToken(core.TokenRequest{
		Requester: "alice-browser", Subject: "alice", Host: "webpics",
		Realm: "travel", Resource: "photo-0000", Action: core.ActionRead,
	})
	if err != nil {
		b.Fatal(err)
	}
	return w, h, pairs, sim.TokenRequestFor(tok.Token)
}

// BenchmarkDecisionBatchVsSingle is the tentpole measurement: resolving N
// cold (resource, action) pairs with one batched round-trip versus N
// per-pair decision queries. The am-rt/op metric is the AM round-trip count
// per iteration — batch must sit at 1 where single sits at N.
func BenchmarkDecisionBatchVsSingle(b *testing.B) {
	const n = 16
	b.Run(fmt.Sprintf("single-%d", n), func(b *testing.B) {
		recordBench(b)
		w, h, pairs, req := decisionBenchFixture(b, n)
		w.ResetAMRequests()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Enforcer.Cache().Invalidate()
			for _, pr := range pairs {
				res, err := h.Enforcer.Check(req, "bob", "travel", pr.Resource, pr.Action)
				if err != nil || res.Verdict != pep.VerdictAllow {
					b.Fatalf("res=%+v err=%v", res, err)
				}
			}
		}
		b.ReportMetric(float64(w.AMRequests())/float64(b.N), "am-rt/op")
	})
	b.Run(fmt.Sprintf("batch-%d", n), func(b *testing.B) {
		recordBench(b)
		w, h, pairs, req := decisionBenchFixture(b, n)
		w.ResetAMRequests()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Enforcer.Cache().Invalidate()
			results, err := h.Enforcer.CheckBatch(req, "bob", "travel", pairs)
			if err != nil {
				b.Fatal(err)
			}
			for _, res := range results {
				if res.Verdict != pep.VerdictAllow {
					b.Fatalf("res=%+v", res)
				}
			}
		}
		b.ReportMetric(float64(w.AMRequests())/float64(b.N), "am-rt/op")
	})
}

// BenchmarkDecisionScopedInvalidation measures the cost of one unrelated
// policy change against a hot cache: with drop-all invalidation every
// change forces a full re-query stampede of the hot set; with scoped
// invalidation the hot entries survive and the AM sees nothing.
func BenchmarkDecisionScopedInvalidation(b *testing.B) {
	const hot = 32
	run := func(b *testing.B, scoped bool) {
		w, h, pairs, req := decisionBenchFixture(b, hot)
		h.Enforcer.Cache().SetScopedInvalidation(scoped)
		w.AM.EnableInvalidationPush(nil)
		// An unrelated realm whose policy churns each iteration.
		coldPol, err := w.AM.CreatePolicy("bob", policy.Policy{
			Owner: "bob", Name: "cold", Kind: policy.KindGeneral,
			Rules: []policy.Rule{{Effect: policy.EffectDeny, Subjects: []policy.Subject{{Type: policy.SubjectEveryone}}}},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := w.AM.LinkGeneral("bob", "cold-realm", coldPol.ID); err != nil {
			b.Fatal(err)
		}
		warm := func() {
			if _, err := h.Enforcer.CheckBatch(req, "bob", "travel", pairs); err != nil {
				b.Fatal(err)
			}
		}
		// Quiesce the setup's link-push before warming, so the generation
		// guard does not drop the warmup fill.
		w.AM.FlushInvalidations()
		warm()
		w.ResetAMRequests()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			coldPol.Name = fmt.Sprintf("cold-%d", i)
			if err := w.AM.UpdatePolicy("bob", coldPol); err != nil {
				b.Fatal(err)
			}
			w.AM.FlushInvalidations()
			warm()
		}
		b.ReportMetric(float64(w.AMRequests())/float64(b.N), "am-rt/op")
	}
	b.Run("drop-all", func(b *testing.B) { recordBench(b); run(b, false) })
	b.Run("scoped", func(b *testing.B) { recordBench(b); run(b, true) })
}

// BenchmarkDecisionCacheLRU exercises the shard-striped LRU under capacity
// pressure: every put on a full cache evicts.
func BenchmarkDecisionCacheLRU(b *testing.B) {
	recordBench(b)
	c := pep.NewDecisionCacheCap(1024)
	keys := make([]string, 4096) // 4x capacity
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			key := keys[i%len(keys)]
			if i%4 == 0 {
				c.Put(key, true, 3600)
			} else {
				c.Get(key)
			}
			i++
		}
	})
	b.ReportMetric(float64(c.Evictions())/float64(b.N), "evictions/op")
}

func BenchmarkDecisionCache(b *testing.B) {
	recordBench(b)
	c := pep.NewDecisionCache()
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		c.Put(keys[i], true, 3600)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(keys[i%len(keys)]); !ok {
			b.Fatal("miss")
		}
	}
}

// --- E15: WAL-shipping replication — apply throughput, visibility lag,
// read scaling across replicas ---

// replBenchSecret / replBenchKey are the shared deployment secrets of the
// replication benchmarks.
const replBenchSecret = "bench-repl-secret"

var replBenchKey = []byte("bench-shared-token-key-012345678")

// BenchmarkReplicationApplyThroughput measures the follower's apply path in
// isolation: records/s a follower sustains installing an already-fetched
// WAL stream into its store (ns/op is per record).
func BenchmarkReplicationApplyThroughput(b *testing.B) {
	primary := store.New()
	primary.EnableReplication(b.N + 1)
	for i := 0; i < b.N; i++ {
		if _, err := primary.Put("link", fmt.Sprintf("k%08d", i), benchEntity{Owner: "bob", Seq: i}); err != nil {
			b.Fatal(err)
		}
	}
	records, _, err := primary.TailSince(0, b.N)
	if err != nil {
		b.Fatal(err)
	}
	follower := store.New()
	b.ResetTimer()
	for _, rec := range records {
		if err := follower.ApplyReplicated(rec); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if follower.LastSeq() != primary.LastSeq() {
		b.Fatalf("follower at %d, primary at %d", follower.LastSeq(), primary.LastSeq())
	}
}

// replBenchWorld starts a primary AM with the standard pairing fixture and
// n-1 followers syncing from it over HTTP, returning one signed decision
// client per node (primary first).
func replBenchWorld(b *testing.B, nodes int) (*am.AM, []*am.AM, []*amclient.Client, core.DecisionQuery) {
	b.Helper()
	primary := am.New(am.Config{
		Name: "am-primary", TokenKey: replBenchKey,
		Replication: am.ReplicationConfig{Role: am.RolePrimary, Secret: replBenchSecret},
	})
	primarySrv := httptest.NewServer(primary.Handler())
	primary.SetBaseURL(primarySrv.URL)
	b.Cleanup(func() { primarySrv.Close(); primary.Close() })

	code, err := primary.ApprovePairing(core.PairingRequest{Host: "webpics", User: "bob"})
	if err != nil {
		b.Fatal(err)
	}
	pairing, err := primary.ExchangeCode(code, "webpics")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := primary.RegisterRealm(pairing.PairingID, core.ProtectRequest{Realm: "travel"}); err != nil {
		b.Fatal(err)
	}
	pol, err := primary.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectUser, Name: "alice"}},
			Actions:  []core.Action{core.ActionRead},
		}},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := primary.LinkGeneral("bob", "travel", pol.ID); err != nil {
		b.Fatal(err)
	}
	tok, err := primary.IssueToken(core.TokenRequest{
		Requester: "alice-browser", Subject: "alice", Host: "webpics",
		Realm: "travel", Resource: "photo", Action: core.ActionRead,
	})
	if err != nil {
		b.Fatal(err)
	}

	clients := []*amclient.Client{amclient.New(amclient.Config{
		BaseURL: primarySrv.URL, PairingID: pairing.PairingID, Secret: pairing.Secret,
	})}
	var followers []*am.AM
	for i := 1; i < nodes; i++ {
		f := am.New(am.Config{
			Name: fmt.Sprintf("am-follower-%d", i), TokenKey: replBenchKey,
			Replication: am.ReplicationConfig{
				Role: am.RoleFollower, Secret: replBenchSecret,
				PrimaryURL: primarySrv.URL, PollWait: 100 * time.Millisecond,
			},
		})
		srv := httptest.NewServer(f.Handler())
		f.SetBaseURL(srv.URL)
		b.Cleanup(func() { srv.Close(); f.Close() })
		if !f.WaitReplicated(primary.Store().LastSeq(), 10*time.Second) {
			b.Fatal("follower never caught up during setup")
		}
		followers = append(followers, f)
		clients = append(clients, amclient.New(amclient.Config{
			BaseURL: srv.URL, PairingID: pairing.PairingID, Secret: pairing.Secret,
		}))
	}
	q := core.DecisionQuery{
		Host: "webpics", Realm: "travel", Resource: "photo",
		Action: core.ActionRead, Token: tok.Token,
	}
	return primary, followers, clients, q
}

// BenchmarkReplicationVisibilityLag measures primary→follower visibility
// over real HTTP: per iteration one write is acknowledged by the primary
// and the clock stops when the follower has applied it. Reports the mean
// as ns/op and the p99 as a custom metric.
func BenchmarkReplicationVisibilityLag(b *testing.B) {
	primary, followers, _, _ := replBenchWorld(b, 2)
	follower := followers[0]
	lags := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := primary.Store().Put("bench", fmt.Sprintf("k%08d", i), benchEntity{Seq: i}); err != nil {
			b.Fatal(err)
		}
		target := primary.Store().LastSeq()
		for follower.Store().LastSeq() < target {
			time.Sleep(50 * time.Microsecond)
		}
		lags = append(lags, time.Since(start))
	}
	b.StopTimer()
	sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
	b.ReportMetric(float64(lags[len(lags)*99/100]), "p99-visibility-ns")
}

// BenchmarkReplicaDecisionReadScaling measures decision read throughput as
// replicas join: the same signed decision query spread round-robin across
// 1, 2 and 3 serving nodes (primary plus followers). ns/op is the
// per-decision latency of the whole fleet under parallel load.
func BenchmarkReplicaDecisionReadScaling(b *testing.B) {
	for _, nodes := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("replicas-%d", nodes), func(b *testing.B) {
			_, _, clients, q := replBenchWorld(b, nodes)
			var next atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				c := clients[int(next.Add(1))%len(clients)]
				for pb.Next() {
					dec, err := c.Decide(q)
					if err != nil {
						b.Fatal(err)
					}
					if !dec.Permit() {
						b.Fatalf("deny: %+v", dec)
					}
				}
			})
		})
	}
}

// --- E16: sharded cluster — aggregate decision+mutation throughput on
// disjoint owners, one primary versus a two-shard cluster ---

// clusterBenchOwner is one owner's shared sim fixture plus a private
// write counter.
type clusterBenchOwner struct {
	*sim.ClusterOwnerRig
	seq atomic.Int64
}

// clusterBenchSecret is the benchmark deployment's shared secret.
const clusterBenchSecret = "bench-cluster-secret"

// clusterBenchWorld starts one durable primary AM per named shard, all on
// one consistent-hash ring, and returns owners (two per shard, plus
// enough extras to reach four total in the single-shard case) with their
// protocol fixtures and shard-aware clients.
func clusterBenchWorld(b *testing.B, shardNames []string) []*clusterBenchOwner {
	b.Helper()
	srvs := make(map[string]*httptest.Server, len(shardNames))
	var shards []core.ShardInfo
	for _, name := range shardNames {
		srv := httptest.NewUnstartedServer(nil)
		srv.Start()
		b.Cleanup(srv.Close)
		srvs[name] = srv
		shards = append(shards, core.ShardInfo{
			Name: name, Primary: srv.URL, Endpoints: []string{srv.URL},
		})
	}
	ring, err := cluster.New(shards, 0)
	if err != nil {
		b.Fatal(err)
	}
	ams := make(map[string]*am.AM, len(shardNames))
	for _, s := range shards {
		// Fsynced WAL: the acknowledged-durable write path of a production
		// primary. Durability serializes every mutation behind one log per
		// shard — exactly the per-primary ceiling sharding is meant to
		// multiply.
		st, err := store.Open(filepath.Join(b.TempDir(), "state.json"), store.WithFsync())
		if err != nil {
			b.Fatal(err)
		}
		a := am.New(am.Config{
			Name: "am-" + s.Name, BaseURL: s.Primary, Store: st, TokenKey: replBenchKey,
			Replication: am.ReplicationConfig{Role: am.RolePrimary, Secret: clusterBenchSecret},
			Cluster:     am.ClusterConfig{Shard: s.Name, Ring: ring},
		})
		b.Cleanup(func() { a.Close(); st.Close() })
		ams[s.Name] = a
		srvs[s.Name].Config.Handler = a.Handler()
	}

	// Four owners, spread evenly across the shards (all on the one shard
	// in the single-primary case — same owner count, same fixture, only
	// the partitioning differs).
	perShard := 4 / len(shardNames)
	var owners []*clusterBenchOwner
	counts := make(map[string]int, len(shardNames))
	for i := 0; len(owners) < 4; i++ {
		owner := core.UserID(fmt.Sprintf("user-%d", i))
		home := ring.Owner(owner).Name
		if counts[home] >= perShard {
			continue
		}
		counts[home]++
		rig, err := sim.SetupClusterOwner(amclient.Config{BaseURL: shards[0].Primary}, owner)
		if err != nil {
			b.Fatal(err)
		}
		o := &clusterBenchOwner{ClusterOwnerRig: rig}
		owners = append(owners, o)
	}
	return owners
}

// BenchmarkClusterShardedThroughput is the E16 tentpole measurement: a
// mixed decision+mutation workload over four disjoint owners, against one
// primary versus a two-shard cluster. Every op is one shard-routed HTTP
// call, three durable policy writes to every signed decision (the write
// path is what sharding multiplies); ns/op is the aggregate per-op
// latency of the whole fleet under parallel load. The acceptance bar is two-shards sustaining >= 1.8x the
// single-primary throughput.
func BenchmarkClusterShardedThroughput(b *testing.B) {
	run := func(b *testing.B, shardNames []string) {
		owners := clusterBenchWorld(b, shardNames)
		var next atomic.Int64
		// Far more in-flight requests than cores: the write path's fsync is
		// disk wait, not CPU, so a saturated primary has its mutation
		// throughput pinned by its single serialized WAL stream — the
		// ceiling a second shard doubles.
		b.SetParallelism(16)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			slot := int(next.Add(1))
			i := 0
			for pb.Next() {
				o := owners[(slot+i)%len(owners)]
				if i%4 != 0 {
					if _, err := o.WritePolicy(int(o.seq.Add(1))); err != nil {
						b.Fatal(err)
					}
				} else {
					if err := o.Decide(); err != nil {
						b.Fatal(err)
					}
				}
				i++
			}
		})
	}
	b.Run("single-primary", func(b *testing.B) {
		recordBench(b)
		run(b, []string{"bench-a"})
	})
	b.Run("two-shards", func(b *testing.B) {
		recordBench(b)
		run(b, []string{"bench-a", "bench-b"})
	})
}

// BenchmarkClusterMigrateOwner measures the live-migration drill itself:
// one owner with a populated closure (64 policies + links) moved between
// the two shards of a running cluster, per iteration (alternating
// directions so each run starts clean).
func BenchmarkClusterMigrateOwner(b *testing.B) {
	recordBench(b)
	owners := clusterBenchWorld(b, []string{"bench-a", "bench-b"})
	o := owners[0]
	for i := 0; i < 64; i++ {
		if _, err := o.WritePolicy(100000 + i); err != nil {
			b.Fatal(err)
		}
	}
	info := o.Decider.Info()
	urls := make(map[string]string, len(info.Shards))
	for _, s := range info.Shards {
		urls[s.Name] = s.Primary
	}
	from := clusterRingOwner(info, o.Owner)
	to := "bench-a"
	if from == "bench-a" {
		to = "bench-b"
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := amclient.New(amclient.Config{BaseURL: urls[from], ReplSecret: clusterBenchSecret})
		dst := amclient.New(amclient.Config{BaseURL: urls[to], ReplSecret: clusterBenchSecret})
		if _, err := amclient.MigrateOwner(src, dst, o.Owner, to, nil); err != nil {
			b.Fatal(err)
		}
		from, to = to, from
	}
}

// clusterRingOwner recomputes an owner's home shard from a ClusterInfo.
func clusterRingOwner(info core.ClusterInfo, owner core.UserID) string {
	ring, err := cluster.New(info.Shards, info.Vnodes)
	if err != nil {
		return ""
	}
	return ring.Owner(owner).Name
}

// --- E17: the spawned-binary load harness (internal/loadgen) ---

// BenchmarkLoadgenSpawnedDecision measures the shard-routed decision path
// against REAL spawned amserver processes — the process-boundary
// counterpart of BenchmarkClusterShardedThroughput's in-process number.
// The gap between the two is pure transport + scheduling overhead; the
// scenario-level trajectory (throughput, p50/p99, fault phases) lives in
// BENCH_E17.json, regenerated by `go run ./cmd/loadgen` (schema in
// docs/BENCHMARKS.md).
func BenchmarkLoadgenSpawnedDecision(b *testing.B) {
	recordBench(b)
	ctx := b.Context()
	binary, err := loadgen.BuildServer(ctx, b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	rig, err := loadgen.StartCluster(ctx, binary, b.TempDir(), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer rig.Stop()
	owner := rig.OwnersFor("bench", "shard-a", 1)[0]
	o, err := sim.SetupClusterOwner(rig.ClientConfig(), owner)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := o.Decide(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E18: the compiled decision index — candidate pre-filter vs rule scan ---

// decisionIndexPolicy builds a general policy whose first rules-1 rules
// cover only write (noise for a read query) with one permit-read rule for
// alice at the end: the compiled read candidate list holds a single rule
// while the scan path must test coversAction on every one.
func decisionIndexPolicy(rules int) policy.Policy {
	p := policy.Policy{Owner: "bob", Kind: policy.KindGeneral, Name: "bench"}
	for i := 0; i < rules-1; i++ {
		p.Rules = append(p.Rules, policy.Rule{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectUser, Name: fmt.Sprintf("user-%d", i)}},
			Actions:  []core.Action{core.ActionWrite},
		})
	}
	p.Rules = append(p.Rules, policy.Rule{
		Effect:   policy.EffectPermit,
		Subjects: []policy.Subject{{Type: policy.SubjectUser, Name: "alice"}},
		Actions:  []core.Action{core.ActionRead},
	})
	return p
}

// BenchmarkDecisionIndex measures the compiled decision index at two
// layers. engine-*: policy.EvaluateCompiled against policy.Evaluate on the
// same wide policy — the pure candidate-pre-filter win. am-*: AM.Decide
// end to end with the lazy per-link index against the same AM built with
// DisableDecisionIndex (per-decision link resolution plus full rule scan);
// the gap here also includes the link/policy store lookups the index
// caches.
func BenchmarkDecisionIndex(b *testing.B) {
	const rules = 128
	req := policy.Request{
		Subject: "alice", Action: core.ActionRead, Owner: "bob", Realm: "travel",
		Resource: core.ResourceRef{Host: "h", Resource: "r"},
	}
	pol := decisionIndexPolicy(rules)
	e := policy.NewEngine(nil)
	b.Run(fmt.Sprintf("engine-scan-rules-%d", rules), func(b *testing.B) {
		recordBench(b)
		for i := 0; i < b.N; i++ {
			if res := e.Evaluate(req, &pol, nil); res.Decision != core.DecisionPermit {
				b.Fatal("deny")
			}
		}
	})
	b.Run(fmt.Sprintf("engine-compiled-rules-%d", rules), func(b *testing.B) {
		recordBench(b)
		c := policy.Compile(&pol)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res := e.EvaluateCompiled(req, c, nil); res.Decision != core.DecisionPermit {
				b.Fatal("deny")
			}
		}
	})

	for _, mode := range []struct {
		name    string
		disable bool
	}{{"am-compiled", false}, {"am-scan", true}} {
		b.Run(fmt.Sprintf("%s-rules-%d", mode.name, rules), func(b *testing.B) {
			recordBench(b)
			a := am.New(am.Config{
				Name:                 "bench-am",
				TokenKey:             []byte("bench-master-key-0123456789abcde"),
				DisableDecisionIndex: mode.disable,
			})
			defer a.Close()
			code, err := a.ApprovePairing(core.PairingRequest{Host: "webpics", User: "bob"})
			if err != nil {
				b.Fatal(err)
			}
			pairing, err := a.ExchangeCode(code, "webpics")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := a.RegisterRealm(pairing.PairingID, core.ProtectRequest{Realm: "travel"}); err != nil {
				b.Fatal(err)
			}
			created, err := a.CreatePolicy("bob", decisionIndexPolicy(rules))
			if err != nil {
				b.Fatal(err)
			}
			if err := a.LinkGeneral("bob", "travel", created.ID); err != nil {
				b.Fatal(err)
			}
			tok, err := a.IssueToken(core.TokenRequest{
				Requester: "alice-browser", Subject: "alice", Host: "webpics",
				Realm: "travel", Resource: "photo-1", Action: core.ActionRead,
			})
			if err != nil {
				b.Fatal(err)
			}
			q := core.DecisionQuery{
				Host: "webpics", Realm: "travel", Resource: "photo-1",
				Action: core.ActionRead, Token: tok.Token,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dec, err := a.Decide(pairing.PairingID, q)
				if err != nil || !dec.Permit() {
					b.Fatalf("dec=%+v err=%v", dec, err)
				}
			}
		})
	}
}

// BenchmarkRebalancePlan measures the pure planner over a populated ring:
// diffing old-vs-target ownership for every owner and emitting the minimal
// move set when the ring grows by one shard. This is the CPU-bound slice of
// a rebalance start (the migrations themselves are network-bound); it must
// stay cheap enough to run inline in the POST /v1/rebalance handler.
func BenchmarkRebalancePlan(b *testing.B) {
	for _, owners := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("owners-%d", owners), func(b *testing.B) {
			recordBench(b)
			shards := []core.ShardInfo{
				{Name: "shard-a", Primary: "http://a"},
				{Name: "shard-b", Primary: "http://b"},
				{Name: "shard-c", Primary: "http://c"},
			}
			ring, err := cluster.New(shards, 64)
			if err != nil {
				b.Fatal(err)
			}
			byShard := make(map[string][]core.UserID, len(shards))
			for i := 0; i < owners; i++ {
				o := core.UserID(fmt.Sprintf("owner-%06d", i))
				name := ring.Owner(o).Name
				byShard[name] = append(byShard[name], o)
			}
			target := ring.State()
			target.Version = 1
			target.Shards = append(append([]core.ShardInfo(nil), target.Shards...),
				core.ShardInfo{Name: "shard-d", Primary: "http://d"})
			req := core.RebalanceRequest{Target: target}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan, err := rebalance.BuildPlan(req, byShard)
				if err != nil {
					b.Fatal(err)
				}
				if len(plan.Moves) == 0 {
					b.Fatal("empty plan")
				}
			}
		})
	}
}
