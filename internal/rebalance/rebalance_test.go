package rebalance_test

// The coordinator's proof suite runs against real AM nodes behind
// httptest servers — the same HTTP surface production coordinators
// drive — covering the three contracts ISSUE'd for the self-rebalancing
// cluster: crash-resume (a killed coordinator continues its checkpointed
// plan without double-migrating), abort (a clean stop leaves every owner
// wholly on exactly one shard with consistent wrong_shard hints, under
// concurrent writes), and end-to-end convergence for both topology
// directions (shard add, shard drain).

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"umac/internal/am"
	"umac/internal/amclient"
	"umac/internal/cluster"
	"umac/internal/core"
	"umac/internal/policy"
	"umac/internal/rebalance"
	"umac/internal/store"
)

const testSecret = "rebalance-test-secret"

// callCounter records per-(method,path-prefix,owner) request counts so
// tests can assert exactly-once migration work after a resume.
type callCounter struct {
	mu     sync.Mutex
	counts map[string]int
}

func (cc *callCounter) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := ""
		switch {
		case r.URL.Path == "/v1/replication/snapshot" && r.URL.Query().Get("owner") != "":
			key = "snapshot/" + r.URL.Query().Get("owner")
		case r.Method == http.MethodPut && strings.HasPrefix(r.URL.Path, "/v1/cluster/owners/"):
			key = "pin/" + strings.TrimPrefix(r.URL.Path, "/v1/cluster/owners/")
		}
		if key != "" {
			cc.mu.Lock()
			cc.counts[key]++
			cc.mu.Unlock()
		}
		next.ServeHTTP(w, r)
	})
}

func (cc *callCounter) get(key string) int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.counts[key]
}

func (cc *callCounter) snapshot() map[string]int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	out := make(map[string]int, len(cc.counts))
	for k, v := range cc.counts {
		out[k] = v
	}
	return out
}

// rig is a running multi-shard cluster of in-process AMs, one primary
// per shard, each behind a counting httptest server.
type rig struct {
	t      *testing.T
	ring   *cluster.Ring
	shards []core.ShardInfo
	ams    map[string]*am.AM
	srvs   map[string]*httptest.Server
	calls  *callCounter
}

// newRig starts one AM primary per named shard, all built from the same
// version-0 ring over those shards.
func newRig(t *testing.T, shardNames ...string) *rig {
	t.Helper()
	r := &rig{
		t:     t,
		ams:   make(map[string]*am.AM),
		srvs:  make(map[string]*httptest.Server),
		calls: &callCounter{counts: make(map[string]int)},
	}
	// Servers first: the ring must name the URLs before the AMs exist.
	for _, name := range shardNames {
		srv := httptest.NewUnstartedServer(nil)
		srv.Start()
		r.srvs[name] = srv
		r.shards = append(r.shards, core.ShardInfo{
			Name: name, Primary: srv.URL, Endpoints: []string{srv.URL},
		})
	}
	ring, err := cluster.New(r.shards, 64)
	if err != nil {
		t.Fatal(err)
	}
	r.ring = ring
	for _, s := range r.shards {
		r.startAM(s.Name, nil)
	}
	t.Cleanup(r.close)
	return r
}

// startAM builds (or rebuilds, with the given store — the crash-restart
// path) the named shard's AM and points its server at it.
func (r *rig) startAM(name string, st *store.Store) *am.AM {
	r.t.Helper()
	a := am.New(am.Config{
		Name: "am-" + name, Store: st, BaseURL: r.srvs[name].URL,
		Replication: am.ReplicationConfig{Role: am.RolePrimary, Secret: testSecret},
		Cluster:     am.ClusterConfig{Shard: name, Ring: r.ring},
	})
	r.srvs[name].Config.Handler = r.calls.middleware(a.Handler())
	r.ams[name] = a
	return a
}

// addShard starts a fresh, empty shard primary built from the rig's
// original ring (which does not include it): exactly how a new node
// joins — it owns nothing until a rebalance pushes a ring that includes
// it.
func (r *rig) addShard(name string) core.ShardInfo {
	r.t.Helper()
	srv := httptest.NewUnstartedServer(nil)
	srv.Start()
	r.srvs[name] = srv
	info := core.ShardInfo{Name: name, Primary: srv.URL, Endpoints: []string{srv.URL}}
	r.shards = append(r.shards, info)
	r.startAM(name, nil)
	return info
}

func (r *rig) close() {
	for _, a := range r.ams {
		a.Close()
	}
	for _, s := range r.srvs {
		s.Close()
	}
}

// client returns an admin client for the named shard's primary.
func (r *rig) client(name string) *amclient.Client {
	return amclient.New(amclient.Config{BaseURL: r.srvs[name].URL, ReplSecret: testSecret})
}

// seedOwners creates n owners per shard (by ring placement), each with
// two policies and a custodian record, and returns every owner seeded.
func (r *rig) seedOwners(perShard int) []core.UserID {
	r.t.Helper()
	var owners []core.UserID
	seeded := make(map[string]int, len(r.ams))
	for i := 0; ; i++ {
		owner := core.UserID(fmt.Sprintf("owner-%03d", i))
		shard := r.ring.Owner(owner).Name
		if seeded[shard] >= perShard {
			done := true
			for name := range r.ams {
				if seeded[name] < perShard {
					done = false
				}
			}
			if done {
				break
			}
			continue
		}
		seeded[shard]++
		owners = append(owners, owner)
		a := r.ams[shard]
		for j := 0; j < 2; j++ {
			if _, err := a.CreatePolicy(owner, permitPolicy(owner)); err != nil {
				r.t.Fatalf("seed policy for %s on %s: %v", owner, shard, err)
			}
		}
		if err := a.AddCustodian(owner, owner+"-friend"); err != nil {
			r.t.Fatalf("seed custodian for %s: %v", owner, err)
		}
	}
	return owners
}

func permitPolicy(owner core.UserID) policy.Policy {
	return policy.Policy{
		Owner: owner, Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectEveryone}},
		}},
	}
}

// buildPlan gathers effective owners over the rig's live topology and
// plans toward target.
func (r *rig) buildPlan(req core.RebalanceRequest) *rebalance.Plan {
	r.t.Helper()
	owners, err := rebalance.GatherOwners(r.currentShards(), testSecret, nil)
	if err != nil {
		r.t.Fatal(err)
	}
	plan, err := rebalance.BuildPlan(req, owners)
	if err != nil {
		r.t.Fatal(err)
	}
	return plan
}

// currentShards returns the shard membership of the ring currently in
// force on the first seeded shard (the coordinator host's view).
func (r *rig) currentShards() []core.ShardInfo {
	info, err := r.client(r.shards[0].Name).ClusterInfo()
	if err != nil {
		r.t.Fatal(err)
	}
	return info.Shards
}

// targetAdd returns a v1 RingState adding the given shard infos.
func (r *rig) targetAdd(added ...core.ShardInfo) core.RingState {
	st := r.ring.State()
	st.Version = r.ring.Version() + 1
	st.Shards = append(append([]core.ShardInfo(nil), st.Shards...), added...)
	return st
}

// targetDrain returns a v1 RingState marking the given shard draining.
func (r *rig) targetDrain(name string) core.RingState {
	st := r.ring.State()
	st.Version = r.ring.Version() + 1
	st.Draining = append(st.Draining, name)
	return st
}

// coordinator builds a coordinator checkpointing through the named
// shard's store.
func (r *rig) coordinator(host string, cfg rebalance.Config) *rebalance.Coordinator {
	cfg.Store = r.ams[host].Store()
	cfg.Secret = testSecret
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 2
	}
	return rebalance.New(cfg)
}

// effectiveOwners asks every live shard for its effective owner set.
func (r *rig) effectiveOwners() map[string][]core.UserID {
	r.t.Helper()
	out := make(map[string][]core.UserID)
	for name := range r.ams {
		stats, err := r.client(name).OwnerStats()
		if err != nil {
			r.t.Fatalf("owner stats of %s: %v", name, err)
		}
		for _, o := range stats.Owners {
			out[name] = append(out[name], o.Owner)
		}
	}
	return out
}

// assertConverged asserts every seeded owner is effectively owned by
// exactly the shard the target ring places it on, with no overrides left
// anywhere.
func (r *rig) assertConverged(owners []core.UserID, target core.RingState) {
	r.t.Helper()
	ring, err := cluster.NewState(target)
	if err != nil {
		r.t.Fatal(err)
	}
	byShard := r.effectiveOwners()
	placed := make(map[core.UserID]string)
	for shard, os := range byShard {
		for _, o := range os {
			if prev, dup := placed[o]; dup {
				r.t.Fatalf("owner %s effectively owned by both %s and %s", o, prev, shard)
			}
			placed[o] = shard
		}
	}
	for _, o := range owners {
		want := ring.Owner(o).Name
		if placed[o] != want {
			r.t.Errorf("owner %s on shard %q, target ring places it on %q", o, placed[o], want)
		}
	}
	for name := range r.ams {
		info, err := r.client(name).ClusterInfo()
		if err != nil {
			r.t.Fatal(err)
		}
		if len(info.Overrides) != 0 {
			r.t.Errorf("shard %s still holds %d overrides after convergence: %v", name, len(info.Overrides), info.Overrides)
		}
		if info.RingVersion != target.Version {
			r.t.Errorf("shard %s at ring v%d, want v%d", name, info.RingVersion, target.Version)
		}
	}
}

// --- End-to-end: shard add ---

func TestRebalanceAddShard(t *testing.T) {
	r := newRig(t, "shard-a", "shard-b")
	owners := r.seedOwners(8)
	added := r.addShard("shard-c")
	target := r.targetAdd(added)

	plan := r.buildPlan(core.RebalanceRequest{Target: target})
	if len(plan.Moves) == 0 {
		t.Fatal("shard add planned no moves")
	}
	for _, m := range plan.Moves {
		if m.To != "shard-c" {
			t.Fatalf("shard-add move %s targets %s, not the new shard", m.Owner, m.To)
		}
	}

	var moves []core.UserID
	co := r.coordinator("shard-a", rebalance.Config{
		Notify: func(signal string, owner core.UserID, st core.RebalanceStatus) {
			if signal == core.SignalRebalanceMove {
				moves = append(moves, owner)
			}
		},
	})
	if _, err := co.Start(plan); err != nil {
		t.Fatal(err)
	}
	st := co.Wait(60 * time.Second)
	if st.State != core.RebalanceDone {
		t.Fatalf("rebalance ended %q (%+v)", st.State, st)
	}
	if st.Done != len(plan.Moves) || st.Remaining != 0 {
		t.Fatalf("progress %d/%d remaining %d, want all %d done", st.Done, st.Total, st.Remaining, len(plan.Moves))
	}
	if len(moves) != len(plan.Moves) {
		t.Fatalf("got %d move signals, want %d", len(moves), len(plan.Moves))
	}
	r.assertConverged(owners, target)

	// Moved owners' data actually lives on the new shard and serves reads.
	for _, m := range plan.Moves {
		got := r.ams["shard-c"].ListPolicies(m.Owner)
		if len(got) != 2 {
			t.Errorf("owner %s has %d policies on shard-c, want 2", m.Owner, len(got))
		}
	}
}

// --- Crash-resume: the coordinator dies between moves and after a copy ---

func TestRebalanceCrashResume(t *testing.T) {
	r := newRig(t, "shard-a", "shard-b")
	r.seedOwners(8)
	added := r.addShard("shard-c")
	target := r.targetAdd(added)

	plan := r.buildPlan(core.RebalanceRequest{Target: target})
	if len(plan.Moves) < 5 {
		t.Fatalf("need at least 5 moves for the crash window, got %d", len(plan.Moves))
	}
	crashAfter := 3

	// Coordinator #1 dies (as a SIGKILL would: no abort, no failed
	// checkpoint) before its fourth move.
	started := 0
	co1 := r.coordinator("shard-a", rebalance.Config{
		BeforeMove: func(m core.RebalanceMove) error {
			if started++; started > crashAfter {
				return fmt.Errorf("injected crash before move %d", started)
			}
			return nil
		},
	})
	if _, err := co1.Start(plan); err != nil {
		t.Fatal(err)
	}
	st := co1.Wait(60 * time.Second)
	if st.State != core.RebalanceRunning || st.Done != crashAfter {
		t.Fatalf("after crash: state %q done %d, want running with %d done", st.State, st.Done, crashAfter)
	}

	// Push one pending owner past its copy leg by hand and checkpoint it
	// copied — the state a coordinator killed between copy and cutover
	// leaves behind.
	copiedOwner := plan.Moves[crashAfter].Owner
	src, dst := r.client(plan.Moves[crashAfter].From), r.client("shard-c")
	_, offset, err := amclient.MigrateCopy(src, dst, copiedOwner, "shard-c", nil)
	if err != nil {
		t.Fatal(err)
	}
	hostStore := r.ams["shard-a"].Store()
	if _, err := hostStore.Put("rebalance-move", plan.ID+"/"+string(copiedOwner),
		map[string]any{"phase": core.MoveCopied, "offset": offset}); err != nil {
		t.Fatal(err)
	}

	before := r.calls.snapshot()

	// Coordinator #2: a fresh process over the same checkpoint store.
	co2 := r.coordinator("shard-a", rebalance.Config{})
	if _, resumed, err := co2.Resume(); err != nil || !resumed {
		t.Fatalf("resume: resumed=%v err=%v", resumed, err)
	}
	st = co2.Wait(60 * time.Second)
	if st.State != core.RebalanceDone || st.Done != len(plan.Moves) {
		t.Fatalf("after resume: state %q done %d/%d", st.State, st.Done, st.Total)
	}

	// Exactly-once: finished owners saw no new snapshot fetch; the
	// copied-checkpoint owner resumed at cutover (no re-copy); each
	// still-pending owner was copied exactly once.
	for i, m := range plan.Moves {
		delta := r.calls.get("snapshot/"+string(m.Owner)) - before["snapshot/"+string(m.Owner)]
		switch {
		case i < crashAfter || m.Owner == copiedOwner:
			if delta != 0 {
				t.Errorf("owner %s (done or copied before resume) re-copied %d times", m.Owner, delta)
			}
		default:
			if delta != 1 {
				t.Errorf("owner %s copied %d times during resume, want exactly 1", m.Owner, delta)
			}
		}
	}
	r.assertConverged(nil, target)
}

// --- Abort: clean stop at a move boundary under concurrent writes ---

func TestRebalanceAbortUnderWrites(t *testing.T) {
	r := newRig(t, "shard-a", "shard-b")
	owners := r.seedOwners(8)
	target := r.targetDrain("shard-b")

	// Rate-limit moves so the writer goroutines genuinely interleave with
	// the migration window instead of racing a sub-millisecond plan.
	plan := r.buildPlan(core.RebalanceRequest{Target: target, MovesPerSec: 10})
	if len(plan.Moves) < 4 {
		t.Fatalf("drain planned only %d moves", len(plan.Moves))
	}
	for _, m := range plan.Moves {
		if m.From != "shard-b" {
			t.Fatalf("drain move %s leaves %s, not the draining shard", m.Owner, m.From)
		}
	}

	// Concurrent acked writes against the moving owners, each through that
	// owner's own shard-aware client (chasing wrong_shard like production
	// PEPs do). Writes need a user session, so one client per owner.
	ccFor := make(map[core.UserID]*amclient.ClusterClient)
	for _, m := range plan.Moves {
		cc, err := amclient.NewCluster(amclient.Config{
			BaseURL: r.srvs["shard-a"].URL, User: m.Owner,
		})
		if err != nil {
			t.Fatal(err)
		}
		ccFor[m.Owner] = cc
	}
	stop := make(chan struct{})
	var wmu sync.Mutex
	acked := make(map[core.UserID][]core.PolicyID)
	var lastErr error
	var writers sync.WaitGroup
	for i := 0; i < 2; i++ {
		writers.Add(1)
		go func(lane int) {
			defer writers.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				owner := plan.Moves[(lane+2*n)%len(plan.Moves)].Owner
				p, err := ccFor[owner].CreatePolicy(permitPolicy(owner))
				if err != nil {
					wmu.Lock()
					lastErr = err
					wmu.Unlock()
					_ = ccFor[owner].Refresh()
					continue
				}
				wmu.Lock()
				acked[owner] = append(acked[owner], p.ID)
				wmu.Unlock()
			}
		}(i)
	}

	// Abort from the move-boundary hook: the third move completes, the
	// fourth never starts.
	var co *rebalance.Coordinator
	started := 0
	co = r.coordinator("shard-a", rebalance.Config{
		BeforeMove: func(m core.RebalanceMove) error {
			if started++; started == 3 {
				if _, err := co.Abort(); err != nil {
					t.Errorf("abort: %v", err)
				}
			}
			return nil
		},
	})
	if _, err := co.Start(plan); err != nil {
		t.Fatal(err)
	}
	st := co.Wait(60 * time.Second)
	close(stop)
	writers.Wait()
	if st.State != core.RebalanceAborted {
		t.Fatalf("state %q after abort, want aborted", st.State)
	}
	if st.Done >= len(plan.Moves) || st.Done < 1 {
		t.Fatalf("abort landed after %d/%d moves — not mid-plan", st.Done, st.Total)
	}

	// Every owner is wholly on exactly one shard, and both sides agree on
	// it: writes through the chasing client and direct hint checks.
	byShard := r.effectiveOwners()
	placed := make(map[core.UserID]string)
	for shard, os := range byShard {
		for _, o := range os {
			if prev, dup := placed[o]; dup {
				t.Fatalf("owner %s owned by both %s and %s after abort", o, prev, shard)
			}
			placed[o] = shard
		}
	}
	for _, o := range owners {
		if placed[o] == "" {
			t.Errorf("owner %s owned by no shard after abort", o)
		}
	}

	// No acked write lost: everything a writer got an ID for is readable
	// through the owner's client (whichever shard serves the owner now).
	wmu.Lock()
	defer wmu.Unlock()
	total := 0
	for owner, ids := range acked {
		if err := ccFor[owner].Refresh(); err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			if _, err := ccFor[owner].GetPolicy(owner, id); err != nil {
				t.Errorf("acked policy %s of %s lost after abort: %v", id, owner, err)
			}
		}
		total += len(ids)
	}
	if total == 0 {
		t.Fatalf("writers acked nothing; the abort ran without concurrent load (last write error: %v)", lastErr)
	}
	t.Logf("abort at %d/%d moves with %d concurrent acked writes, none lost", st.Done, st.Total, total)

	// Re-planning the same target covers exactly the remainder and
	// finishes the drain: the final ring drops shard-b everywhere.
	plan2 := r.buildPlan(core.RebalanceRequest{Target: target})
	if got := len(plan2.Moves); got != len(plan.Moves)-st.Done {
		t.Fatalf("re-plan has %d moves, want the %d remaining", got, len(plan.Moves)-st.Done)
	}
	co2 := r.coordinator("shard-a", rebalance.Config{})
	if _, err := co2.Start(plan2); err != nil {
		t.Fatal(err)
	}
	if st2 := co2.Wait(60 * time.Second); st2.State != core.RebalanceDone {
		t.Fatalf("drain completion ended %q", st2.State)
	}
	finalVersion := target.Version + 1
	for _, name := range []string{"shard-a", "shard-b"} {
		info, err := r.client(name).ClusterInfo()
		if err != nil {
			t.Fatal(err)
		}
		if info.RingVersion != finalVersion {
			t.Errorf("%s at ring v%d after drain, want v%d", name, info.RingVersion, finalVersion)
		}
		for _, s := range info.Shards {
			if s.Name == "shard-b" {
				t.Errorf("%s's final ring still contains the drained shard", name)
			}
		}
	}
	// The drained node disclaims owners it used to serve.
	for _, m := range plan.Moves {
		if _, err := r.ams["shard-b"].CreatePolicy(m.Owner, permitPolicy(m.Owner)); err == nil {
			t.Fatalf("drained shard still accepts writes for %s", m.Owner)
		}
	}
}

// --- Events: every lifecycle transition reaches an EventStream consumer ---

func TestRebalanceEventStream(t *testing.T) {
	r := newRig(t, "shard-a", "shard-b")
	r.seedOwners(4)
	added := r.addShard("shard-c")
	target := r.targetAdd(added)

	// The coordinator host's AM is where signals publish; subscribe its
	// node-wide stream with the repl-secret bearer before the plan runs.
	sc := r.client("shard-a")
	stream := sc.Stream(amclient.StreamConfig{
		Query: url.Values{"types": {"replication"}},
	})
	defer stream.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := stream.Connect(ctx); err != nil {
		t.Fatal(err)
	}

	plan := r.buildPlan(core.RebalanceRequest{Target: target})
	host := r.ams["shard-a"]
	co := r.coordinator("shard-a", rebalance.Config{
		Notify: func(signal string, owner core.UserID, st core.RebalanceStatus) {
			// Publish through the hosting AM's broker exactly as the
			// embedded coordinator does.
			host.Events().Publish(core.Event{
				Type: core.EventReplication, Signal: signal, Owner: owner, Rebalance: &st,
			})
		},
	})
	if _, err := co.Start(plan); err != nil {
		t.Fatal(err)
	}
	if st := co.Wait(60 * time.Second); st.State != core.RebalanceDone {
		t.Fatalf("rebalance ended %q", st.State)
	}

	seen := map[string]int{}
	var movedOwners []core.UserID
	var final core.RebalanceStatus
	for seen[core.SignalRebalanceDone] == 0 {
		ev, err := stream.Next(ctx)
		if err != nil {
			t.Fatalf("stream ended before rebalance-done: %v (seen %v)", err, seen)
		}
		if ev.Rebalance == nil {
			continue // ordinary replication signals interleave
		}
		seen[ev.Signal]++
		if ev.Signal == core.SignalRebalanceMove {
			if ev.Owner == "" {
				t.Error("rebalance-move event without an owner")
			}
			movedOwners = append(movedOwners, ev.Owner)
		}
		final = *ev.Rebalance
	}
	if seen[core.SignalRebalanceStarted] == 0 {
		t.Error("no rebalance-started event")
	}
	if len(movedOwners) != len(plan.Moves) {
		t.Errorf("saw %d move events, want %d", len(movedOwners), len(plan.Moves))
	}
	if final.State != core.RebalanceDone || final.Remaining != 0 {
		t.Errorf("final event carries %+v, want done with 0 remaining", final)
	}
}

// --- Planner properties (pure function, no HTTP) ---

func TestBuildPlanMovesExactlyTheRemapped(t *testing.T) {
	for _, vnodes := range []int{8, 64, 128} {
		shards := []core.ShardInfo{
			{Name: "s1", Primary: "http://s1"},
			{Name: "s2", Primary: "http://s2"},
			{Name: "s3", Primary: "http://s3"},
		}
		old, err := cluster.New(shards, vnodes)
		if err != nil {
			t.Fatal(err)
		}
		target := old.State()
		target.Version = 1
		target.Shards = append(target.Shards, core.ShardInfo{Name: "s4", Primary: "http://s4"})
		next, err := cluster.NewState(target)
		if err != nil {
			t.Fatal(err)
		}

		owners := make(map[string][]core.UserID)
		var all []core.UserID
		for i := 0; i < 200; i++ {
			o := core.UserID(fmt.Sprintf("u-%d-%d", vnodes, i))
			owners[old.Owner(o).Name] = append(owners[old.Owner(o).Name], o)
			all = append(all, o)
		}
		plan, err := rebalance.BuildPlan(core.RebalanceRequest{Target: target}, owners)
		if err != nil {
			t.Fatal(err)
		}

		planned := make(map[core.UserID]core.RebalanceMove, len(plan.Moves))
		for _, m := range plan.Moves {
			if _, dup := planned[m.Owner]; dup {
				t.Fatalf("vnodes=%d: owner %s planned twice", vnodes, m.Owner)
			}
			planned[m.Owner] = m
		}
		moved := 0
		for _, o := range all {
			from, to := old.Owner(o).Name, next.Owner(o).Name
			m, ok := planned[o]
			if from == to {
				if ok {
					t.Fatalf("vnodes=%d: unmoved owner %s planned (%+v)", vnodes, o, m)
				}
				continue
			}
			moved++
			if !ok {
				t.Fatalf("vnodes=%d: remapped owner %s not planned", vnodes, o)
			}
			if m.From != from || m.To != to || m.Phase != core.MovePending {
				t.Fatalf("vnodes=%d: move %+v, want %s→%s pending", vnodes, m, from, to)
			}
		}
		if moved != len(plan.Moves) {
			t.Fatalf("vnodes=%d: plan has %d moves, brute force says %d", vnodes, len(plan.Moves), moved)
		}
		// Minimal remap: adding 1 of 4 shards must move roughly 1/4, never
		// the majority.
		if moved == 0 || moved > len(all)/2 {
			t.Fatalf("vnodes=%d: %d/%d owners moved for a single added shard", vnodes, moved, len(all))
		}
	}
}

func TestBuildPlanRejectsDroppedShard(t *testing.T) {
	shards := []core.ShardInfo{
		{Name: "s1", Primary: "http://s1"},
		{Name: "s2", Primary: "http://s2"},
	}
	ring, err := cluster.New(shards, 16)
	if err != nil {
		t.Fatal(err)
	}
	target := core.RingState{Version: 1, Vnodes: 16, Shards: shards[:1]}
	owners := map[string][]core.UserID{"s2": {"alice"}}
	if _, err := rebalance.BuildPlan(core.RebalanceRequest{Target: target}, owners); err == nil {
		t.Fatal("dropping a populated shard without draining must be rejected")
	}
	_ = ring
}

func TestBuildPlanDrainFinalRing(t *testing.T) {
	shards := []core.ShardInfo{
		{Name: "s1", Primary: "http://s1"},
		{Name: "s2", Primary: "http://s2"},
		{Name: "s3", Primary: "http://s3"},
	}
	target := core.RingState{Version: 5, Vnodes: 16, Shards: shards, Draining: []string{"s2"}}
	plan, err := rebalance.BuildPlan(core.RebalanceRequest{Target: target},
		map[string][]core.UserID{"s2": {"alice", "bob"}})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Final == nil {
		t.Fatal("drain plan has no final ring")
	}
	if plan.Final.Version != 6 || len(plan.Final.Shards) != 2 || len(plan.Final.Draining) != 0 {
		t.Fatalf("final ring %+v, want v6 with s1+s3", plan.Final)
	}
	for _, m := range plan.Moves {
		if m.From != "s2" || m.To == "s2" {
			t.Fatalf("drain move %+v touches the draining shard wrong", m)
		}
	}
}

func TestCoordinatorIdleSurface(t *testing.T) {
	st := store.New()
	co := rebalance.New(rebalance.Config{Store: st, Secret: "x"})
	if got := co.Status(); got.State != "" {
		t.Fatalf("fresh coordinator status %+v", got)
	}
	if _, resumed, err := co.Resume(); err != nil || resumed {
		t.Fatalf("nothing to resume, got resumed=%v err=%v", resumed, err)
	}
	if _, err := co.Abort(); err == nil {
		t.Fatal("abort with no plan must fail")
	}
}
