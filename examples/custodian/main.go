// Custodian demonstrates the Section V.D extension where "a User may only
// be concerned with managing resources and a different entity, a Custodian,
// may be responsible for composing access control policies for a User's Web
// resources" — the setting behind the SMART project (students' resources,
// institutional custodians).
//
// Run with: go run ./examples/custodian
package main

import (
	"fmt"
	"log"

	"umac"
	"umac/internal/sim"
)

func main() {
	world := sim.NewWorld()
	defer world.Close()
	host := world.AddHost("courseware")
	host.AddResource("sam", "coursework", "essay.pdf", []byte("final essay"))

	// Sam (a student) stores resources and pairs the Host with the AM…
	sam := sim.NewUserAgent("sam")
	if err := sam.PairHost(host, world.AMServer.URL); err != nil {
		log.Fatal(err)
	}
	if err := host.Enforcer.Protect("sam", "coursework", []umac.ResourceID{"essay.pdf"}, ""); err != nil {
		log.Fatal(err)
	}
	// …and appoints the university registrar as custodian.
	if err := world.AM.AddCustodian("sam", "registrar"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("sam appointed 'registrar' as custodian of his security settings")

	// The registrar — not Sam — composes and links the policy.
	policies, err := umac.ParsePolicies("sam", `
policy "assessors-only" general {
  permit group:assessors read
  deny everyone write, delete
}`)
	if err != nil {
		log.Fatal(err)
	}
	p, err := world.AM.CreatePolicy("registrar", policies[0]) // actor = custodian
	if err != nil {
		log.Fatal(err)
	}
	if err := world.AM.LinkGeneral("sam", "coursework", p.ID); err != nil {
		log.Fatal(err)
	}
	if err := world.AM.AddGroupMember("registrar", "sam", "assessors", "prof-jones"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("registrar composed policy", p.ID, "and enrolled prof-jones as assessor")

	// The assessor reads the essay; a classmate cannot.
	prof := umac.NewRequester(umac.RequesterConfig{ID: "grading-portal", Subject: "prof-jones"})
	body, err := prof.Fetch(host.ResourceURL("essay.pdf"), umac.ActionRead)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prof-jones read %d bytes\n", len(body))

	classmate := umac.NewRequester(umac.RequesterConfig{ID: "classmate-app", Subject: "kim"})
	if _, err := classmate.Fetch(host.ResourceURL("essay.pdf"), umac.ActionRead); err != nil {
		fmt.Println("kim denied:", err)
	}

	// A non-custodian cannot manage Sam's policies.
	if _, err := world.AM.CreatePolicy("kim", policies[0]); err != nil {
		fmt.Println("kim cannot compose policies for sam:", err)
	}
}
