package loadgen

import (
	"context"
	"fmt"
	"time"

	"umac/internal/cluster"
	"umac/internal/core"
	"umac/internal/sim"
)

// This file holds the bulk-rebalance fault drills: ring_double grows the
// cluster from two shards to four under sustained Zipf load while both a
// migrating shard primary and the coordinator itself are SIGKILLed
// mid-plan; kill_rebalance drains a shard to extinction under the same
// two kills. Both assert the coordinator's contracts against real
// processes: zero acknowledged-write loss, a crash-resumed plan that
// finishes without replanning, and a decision tail that stays bounded
// relative to the clean phase.

// rebalanceRate is the coordinator rate limit the drills request: slow
// enough that the kill windows provably land mid-plan, fast enough that
// a smoke run stays in seconds.
const rebalanceRate = 2.0

// mixedLoad drives a decide-heavy load loop (every 5th op a write) over
// the owner rigs until stop closes (or, with stop nil, for ops
// iterations). Errors are tallied, not fatal — kill windows legitimately
// refuse writes — and only acknowledged writes enter the audit set.
func mixedLoad(ctx context.Context, rec *Recorder, phase string, rigs map[core.UserID]*sim.ClusterOwnerRig, owners []core.UserID, ops int, stop <-chan struct{}, acked *[]ackedWrite) error {
	ph := rec.Phase(phase)
	defer ph.End()
	for i := 0; stop != nil || i < ops; i++ {
		if err := checkCtx(ctx, phase); err != nil {
			return err
		}
		if stop != nil {
			select {
			case <-stop:
				return nil
			default:
			}
		}
		or := rigs[owners[i%len(owners)]]
		if i%5 == 0 {
			var id core.PolicyID
			err := ph.Op(func() error {
				var werr error
				id, werr = or.WritePolicy(i)
				return werr
			})
			if err == nil {
				*acked = append(*acked, ackedWrite{or.Owner, id})
			}
		} else {
			ph.Op(or.Decide)
		}
	}
	return nil
}

// awaitMoves polls the coordinator until its checkpointed progress shows
// at least want completed moves (or a terminal state). Poll errors are
// tolerated — the coordinator host may be dead or restarting — and the
// last successfully read status is returned.
func awaitMoves(ctx context.Context, rig *Rig, want int) (core.RebalanceStatus, error) {
	var last core.RebalanceStatus
	for {
		if err := checkCtx(ctx, "await-moves"); err != nil {
			return last, err
		}
		st, err := rig.AdminClient("a-primary").RebalanceStatus()
		if err == nil {
			last = st
			if st.Done >= want || (st.State != core.RebalanceRunning && st.State != "") {
				return st, nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// bounceNode SIGKILLs a node, lets the cluster feel the loss, and
// restarts it from its WAL.
func bounceNode(ctx context.Context, rig *Rig, name string, down time.Duration) error {
	rig.Logf("loadgen: SIGKILL %s", name)
	rig.Nodes[name].Kill()
	time.Sleep(down)
	if err := rig.Restart(ctx, name); err != nil {
		return fmt.Errorf("loadgen: restart %s: %w", name, err)
	}
	rig.Logf("loadgen: %s recovered", name)
	return nil
}

// guardTail enforces the rebalance latency contract: the stressed
// phase's p99 must stay within factor times the clean phase's p99, with
// an absolute floor absorbing scheduler noise on tiny CI containers.
func guardTail(rec *Recorder, clean, stressed string, factor float64, floor time.Duration) error {
	var cleanP99, stressedP99 int64 = -1, -1
	for _, r := range rec.Records() {
		switch r.Name {
		case fmt.Sprintf("Loadgen/%s/%s", rec.Scenario, clean):
			cleanP99 = r.P99Ns
		case fmt.Sprintf("Loadgen/%s/%s", rec.Scenario, stressed):
			stressedP99 = r.P99Ns
		}
	}
	if cleanP99 < 0 || stressedP99 < 0 {
		return fmt.Errorf("loadgen: tail guard: phases %q/%q not both recorded", clean, stressed)
	}
	bound := int64(float64(cleanP99) * factor)
	if fl := floor.Nanoseconds(); bound < fl {
		bound = fl
	}
	if stressedP99 > bound {
		return fmt.Errorf("loadgen: %s p99 %s exceeds %.0fx clean p99 %s (bound %s)",
			stressed, time.Duration(stressedP99), factor, time.Duration(cleanP99), time.Duration(bound))
	}
	return nil
}

// startRebalance posts the target ring to the coordinator host and
// returns the initial checkpointed status.
func startRebalance(rig *Rig, target core.RingState) (core.RebalanceStatus, error) {
	return rig.AdminClient("a-primary").RebalanceStart(core.RebalanceRequest{
		Target: target, MovesPerSec: rebalanceRate,
	})
}

// RingDouble doubles the ring — two fresh shards join, the coordinator
// plans and executes the bulk migration — under sustained Zipf-spread
// load, with a SIGKILL of a migrating shard primary AND of the
// coordinator host mid-plan. The resumed plan must be the same plan
// (same ID, same move total), finish every move, leave every node on the
// grown ring with no overrides, lose nothing acknowledged, and keep the
// under-rebalance p99 within bounds of the clean phase.
func RingDouble(ctx context.Context, rig *Rig, opts Options) (*Recorder, error) {
	rec := &Recorder{Scenario: "ring_double"}
	// Ring placement hashes shard NAMES, so the grown ring's layout is
	// computable up front; seed a deterministic mix of owners that will
	// move to the new shards and owners that will stay put, guaranteeing
	// the plan is big enough for both kill windows.
	grownNames := []core.ShardInfo{
		{Name: "shard-a", Primary: "http://placeholder-a"},
		{Name: "shard-b", Primary: "http://placeholder-b"},
		{Name: "shard-c", Primary: "http://placeholder-c"},
		{Name: "shard-d", Primary: "http://placeholder-d"},
	}
	grown, err := cluster.New(grownNames, 0)
	if err != nil {
		return rec, err
	}
	var owners []core.UserID
	movers, stayers := 0, 0
	for i := 0; movers < opts.Owners*2 || stayers < opts.Owners; i++ {
		owner := core.UserID(fmt.Sprintf("rd-%d", i))
		from, to := rig.Ring.Owner(owner).Name, grown.Owner(owner).Name
		switch {
		case from != to && movers < opts.Owners*2:
			movers++
		case from == to && stayers < opts.Owners:
			stayers++
		default:
			continue
		}
		owners = append(owners, owner)
	}
	rigs, err := setupOwners(ctx, rig, rec, "setup", owners)
	if err != nil {
		return rec, err
	}

	// Clean-phase load: the latency baseline the rebalance is held to.
	var acked []ackedWrite
	if err := mixedLoad(ctx, rec, "clean_load", rigs, owners, opts.Ops, nil, &acked); err != nil {
		return rec, err
	}

	// Two shards join. They start on the transition spec (old ring plus
	// themselves — amserver requires its own shard in -ring) but receive
	// no client traffic until the coordinator pushes the grown ring.
	info, err := rig.AdminClient("a-primary").ClusterInfo()
	if err != nil {
		return rec, phaseErr("grow", err)
	}
	target := core.RingState{
		Version: info.RingVersion + 1, Vnodes: info.Vnodes,
		Shards: append([]core.ShardInfo(nil), info.Shards...),
	}
	grow := rec.Phase("grow")
	spec := rig.RingSpec
	var joined []*Node
	for _, shard := range []string{"shard-c", "shard-d"} {
		shard := shard
		err := grow.Op(func() error {
			// Each join extends the base spec cumulatively so shard-d's
			// node knows shard-c too.
			node, err := rig.SpawnShard(ctx, shard, spec)
			if err != nil {
				return err
			}
			joined = append(joined, node)
			return nil
		})
		if err != nil {
			grow.End()
			return rec, phaseErr("grow", err)
		}
		spec += "," + shard + "=" + joined[len(joined)-1].Proxy.URL()
	}
	grow.End()
	for _, node := range joined {
		target.Shards = append(target.Shards, core.ShardInfo{
			Name: node.Shard, Primary: node.Proxy.URL(), Endpoints: []string{node.Proxy.URL()},
		})
	}

	// Load keeps flowing for the whole rebalance window.
	stop := make(chan struct{})
	loadDone := make(chan error, 1)
	go func() {
		loadDone <- mixedLoad(ctx, rec, "rebalance_load", rigs, owners, 0, stop, &acked)
	}()
	finish := func() error { close(stop); return <-loadDone }

	st, err := startRebalance(rig, target)
	if err != nil {
		finish()
		return rec, phaseErr("rebalance_start", err)
	}
	planID, planTotal := st.ID, st.Total
	rig.Logf("loadgen: rebalance %s planned %d moves", planID, planTotal)
	if planTotal != movers {
		finish()
		return rec, fmt.Errorf("loadgen: %d moves planned, but %d seeded owners remap onto the new shards", planTotal, movers)
	}

	// Kill window 1: a migrating source primary dies after the first move
	// lands. The coordinator's per-move retry absorbs the outage.
	if _, err := awaitMoves(ctx, rig, 1); err != nil {
		finish()
		return rec, err
	}
	if err := bounceNode(ctx, rig, "b-primary", time.Second); err != nil {
		finish()
		return rec, err
	}

	// Kill window 2: the coordinator host itself dies mid-plan and must
	// resume its checkpointed plan on restart — same plan, no replan.
	if st, err = awaitMoves(ctx, rig, 2); err != nil {
		finish()
		return rec, err
	}
	killedMidPlan := st.State == core.RebalanceRunning && st.Done < st.Total
	if err := bounceNode(ctx, rig, "a-primary", 500*time.Millisecond); err != nil {
		finish()
		return rec, err
	}

	// Convergence: the auto-resumed plan runs to completion.
	deadline := time.Now().Add(3 * time.Minute)
	for {
		if err := checkCtx(ctx, "await-convergence"); err != nil {
			finish()
			return rec, err
		}
		st, err = rig.AdminClient("a-primary").RebalanceStatus()
		if err == nil && st.State == core.RebalanceDone {
			break
		}
		if err == nil && st.State != core.RebalanceRunning {
			finish()
			return rec, fmt.Errorf("loadgen: rebalance ended %q: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			finish()
			return rec, fmt.Errorf("loadgen: rebalance never converged (last %+v, err %v)", st, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err := finish(); err != nil {
		return rec, err
	}
	if st.ID != planID || st.Total != planTotal {
		return rec, fmt.Errorf("loadgen: resumed plan drifted: %s/%d moves, started as %s/%d",
			st.ID, st.Total, planID, planTotal)
	}
	if !killedMidPlan {
		rig.Logf("loadgen: note — coordinator kill landed after the last move; resume proved idempotent completion only")
	}

	// The grown ring is in force everywhere, with no overrides left, and
	// the new shards actually own owners now.
	movedToNew := 0
	for _, name := range []string{"a-primary", "b-primary", "shard-c-primary", "shard-d-primary"} {
		cl := rig.AdminClient(name)
		inf, err := cl.ClusterInfo()
		if err != nil {
			return rec, phaseErr("post-ring-audit", err)
		}
		if inf.RingVersion != target.Version {
			return rec, fmt.Errorf("loadgen: %s at ring v%d after convergence, want v%d", name, inf.RingVersion, target.Version)
		}
		if len(inf.Overrides) != 0 {
			return rec, fmt.Errorf("loadgen: %s still holds %d overrides", name, len(inf.Overrides))
		}
		if inf.Shard == "shard-c" || inf.Shard == "shard-d" {
			stats, err := cl.OwnerStats()
			if err != nil {
				return rec, phaseErr("post-ring-audit", err)
			}
			movedToNew += len(stats.Owners)
		}
	}
	if movedToNew == 0 {
		return rec, fmt.Errorf("loadgen: ring doubled but the new shards own nothing")
	}
	rig.Logf("loadgen: new shards own %d owners after the double", movedToNew)

	// Zero acknowledged loss across both kills and the whole migration,
	// read through the shard-routed surface (clients chase the new ring).
	if err := verifyAcked(ctx, rec, "verify", acked, func(w ackedWrite) error {
		_, err := rigs[w.owner].Manager.GetPolicy(w.owner, w.id)
		return err
	}); err != nil {
		return rec, err
	}
	return rec, guardTail(rec, "clean_load", "rebalance_load", 5, 1500*time.Millisecond)
}

// KillRebalance drains shard-b to extinction — every owner bulk-migrated
// off it, then the shard dropped from the ring — while both the draining
// shard's primary and the coordinator are SIGKILLed mid-plan. Afterwards
// the final ring (without shard-b) must be in force, the drained node
// must disclaim its former owners, and nothing acknowledged may be lost.
func KillRebalance(ctx context.Context, rig *Rig, opts Options) (*Recorder, error) {
	rec := &Recorder{Scenario: "kill_rebalance"}
	owners := append(rig.OwnersFor("kr", "shard-a", opts.Owners),
		rig.OwnersFor("kr", "shard-b", opts.Owners*2)...)
	rigs, err := setupOwners(ctx, rig, rec, "setup", owners)
	if err != nil {
		return rec, err
	}

	var acked []ackedWrite
	if err := mixedLoad(ctx, rec, "clean_load", rigs, owners, opts.Ops, nil, &acked); err != nil {
		return rec, err
	}

	info, err := rig.AdminClient("a-primary").ClusterInfo()
	if err != nil {
		return rec, phaseErr("drain_start", err)
	}
	target := core.RingState{
		Version: info.RingVersion + 1, Vnodes: info.Vnodes,
		Shards:   append([]core.ShardInfo(nil), info.Shards...),
		Draining: append(append([]string(nil), info.Draining...), "shard-b"),
	}

	stop := make(chan struct{})
	loadDone := make(chan error, 1)
	go func() {
		loadDone <- mixedLoad(ctx, rec, "drain_load", rigs, owners, 0, stop, &acked)
	}()
	finish := func() error { close(stop); return <-loadDone }

	st, err := startRebalance(rig, target)
	if err != nil {
		finish()
		return rec, phaseErr("drain_start", err)
	}
	planID, planTotal := st.ID, st.Total
	rig.Logf("loadgen: drain %s planned %d moves off shard-b", planID, planTotal)
	if planTotal != opts.Owners*2 {
		finish()
		return rec, fmt.Errorf("loadgen: drain planned %d moves, want all %d shard-b owners", planTotal, opts.Owners*2)
	}

	// Kill the draining source mid-plan, then the coordinator.
	if _, err := awaitMoves(ctx, rig, 1); err != nil {
		finish()
		return rec, err
	}
	if err := bounceNode(ctx, rig, "b-primary", time.Second); err != nil {
		finish()
		return rec, err
	}
	if _, err := awaitMoves(ctx, rig, 2); err != nil {
		finish()
		return rec, err
	}
	if err := bounceNode(ctx, rig, "a-primary", 500*time.Millisecond); err != nil {
		finish()
		return rec, err
	}

	finalVersion := target.Version + 1 // drain plans push a final ring without the shard
	deadline := time.Now().Add(3 * time.Minute)
	for {
		if err := checkCtx(ctx, "await-drain"); err != nil {
			finish()
			return rec, err
		}
		st, err = rig.AdminClient("a-primary").RebalanceStatus()
		if err == nil && st.State == core.RebalanceDone {
			break
		}
		if err == nil && st.State != core.RebalanceRunning {
			finish()
			return rec, fmt.Errorf("loadgen: drain ended %q: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			finish()
			return rec, fmt.Errorf("loadgen: drain never converged (last %+v, err %v)", st, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err := finish(); err != nil {
		return rec, err
	}
	if st.ID != planID || st.Total != planTotal {
		return rec, fmt.Errorf("loadgen: resumed drain drifted: %s/%d moves, started as %s/%d",
			st.ID, st.Total, planID, planTotal)
	}

	// The final ring — shard-b gone — is in force on the survivor and on
	// the drained node itself, which now owns nothing.
	for _, name := range []string{"a-primary", "b-primary"} {
		inf, err := rig.AdminClient(name).ClusterInfo()
		if err != nil {
			return rec, phaseErr("post-drain-audit", err)
		}
		if inf.RingVersion != finalVersion {
			return rec, fmt.Errorf("loadgen: %s at ring v%d after drain, want final v%d", name, inf.RingVersion, finalVersion)
		}
		for _, s := range inf.Shards {
			if s.Name == "shard-b" {
				return rec, fmt.Errorf("loadgen: %s's final ring still lists the drained shard", name)
			}
		}
	}
	stats, err := rig.AdminClient("b-primary").OwnerStats()
	if err != nil {
		return rec, phaseErr("post-drain-audit", err)
	}
	if len(stats.Owners) != 0 {
		return rec, fmt.Errorf("loadgen: drained shard still effectively owns %d owners", len(stats.Owners))
	}

	if err := verifyAcked(ctx, rec, "verify", acked, func(w ackedWrite) error {
		_, err := rigs[w.owner].Manager.GetPolicy(w.owner, w.id)
		return err
	}); err != nil {
		return rec, err
	}
	return rec, guardTail(rec, "clean_load", "drain_load", 5, 1500*time.Millisecond)
}
