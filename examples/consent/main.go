// Consent demonstrates the real-time consent extension (Section V.D): the
// AM "may send a request for such consent by sending an e-mail or SMS
// message to a User and will not issue an authorization token to the
// Requester before such consent is received."
//
// The Requester↔AM interaction is asynchronous: the client polls a consent
// ticket while Bob's (simulated) phone receives the message and he
// approves.
//
// Run with: go run ./examples/consent
package main

import (
	"fmt"
	"log"
	"time"

	"umac"
	"umac/internal/am"
	"umac/internal/core"
	"umac/internal/sim"
)

func main() {
	world := sim.NewWorld()
	defer world.Close()
	host := world.AddHost("webdocs")
	host.AddResource("bob", "drafts", "novel.md", []byte("Chapter 1 — It was a dark and stormy night"))

	bob := sim.NewUserAgent("bob")
	if err := bob.PairHost(host, world.AMServer.URL); err != nil {
		log.Fatal(err)
	}
	if err := host.Enforcer.Protect("bob", "drafts", []umac.ResourceID{"novel.md"}, ""); err != nil {
		log.Fatal(err)
	}

	// The policy: anyone Bob explicitly approves in the moment may read.
	policies, err := umac.ParsePolicies("bob", `
policy "ask-me-first" general {
  permit everyone read if consent
}`)
	if err != nil {
		log.Fatal(err)
	}
	p, err := world.AM.CreatePolicy("bob", policies[0])
	if err != nil {
		log.Fatal(err)
	}
	if err := world.AM.LinkGeneral("bob", "drafts", p.ID); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Bob protects his drafts with an ask-me-first policy")

	// Bob's phone: when the consent SMS arrives, he reads it and approves.
	world.Outbox.OnDeliver = func(user core.UserID, msg am.OutboxMessage) {
		fmt.Printf("\n[bob's phone] %s\n  %s\n", msg.Subject, msg.Body)
		go func() {
			time.Sleep(30 * time.Millisecond) // Bob thinks about it…
			pending := world.AM.PendingConsents("bob")
			if len(pending) == 0 {
				return
			}
			fmt.Println("[bob] approves the request")
			if err := world.AM.ResolveConsent("bob", pending[0].Ticket, true); err != nil {
				log.Println("resolve:", err)
			}
		}()
	}

	// An editor asks to read the draft; the client blocks (polling the
	// ticket) until Bob approves.
	editor := umac.NewRequester(umac.RequesterConfig{
		ID: "editor-app", Subject: "evelyn",
		ConsentTimeout: 5 * time.Second,
	})
	fmt.Println("\nevelyn's editor app requests the draft — AM defers to Bob…")
	start := time.Now()
	body, err := editor.Fetch(host.ResourceURL("novel.md"), umac.ActionRead)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nevelyn received %d bytes after %s (consent round-trip included)\n",
		len(body), time.Since(start).Round(time.Millisecond))

	// A second requester is denied when Bob says no.
	world.Outbox.OnDeliver = func(user core.UserID, msg am.OutboxMessage) {
		go func() {
			time.Sleep(10 * time.Millisecond)
			pending := world.AM.PendingConsents("bob")
			if len(pending) > 0 {
				fmt.Println("[bob] denies the tabloid")
				world.AM.ResolveConsent("bob", pending[0].Ticket, false)
			}
		}()
	}
	tabloid := umac.NewRequester(umac.RequesterConfig{
		ID: "tabloid-bot", Subject: "paparazzo",
		ConsentTimeout: 5 * time.Second,
	})
	if _, err := tabloid.Fetch(host.ResourceURL("novel.md"), umac.ActionRead); err != nil {
		fmt.Println("tabloid-bot:", err)
	}
}
