// Command amserver runs a standalone Authorization Manager.
//
// Usage:
//
//	amserver -addr :8080 -name my-am [-state am-state.json] [-base-url http://am.example]
//
// State (policies, pairings, realms, groups, token keys) is durable: every
// write is appended to a write-ahead log beside the state file before it is
// acknowledged, so a hard kill loses nothing. Snapshots every
// -snapshot-every interval (and on shutdown) compact the log. Pass -fsync
// to also survive machine crashes, or -no-wal for the legacy
// snapshot-only behaviour. Browser-facing endpoints authenticate via the
// X-Umac-User header (front it with a real SSO proxy in production).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"umac"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		name     = flag.String("name", "am", "AM display name")
		baseURL  = flag.String("base-url", "", "externally reachable URL (default http://<addr>)")
		statef   = flag.String("state", "", "state file (empty = in-memory only)")
		snapshot = flag.String("snapshot", "", "deprecated alias for -state")
		every    = flag.Duration("snapshot-every", time.Minute, "WAL compaction (snapshot) interval")
		tokenTTL = flag.Duration("token-ttl", 30*time.Minute, "authorization token lifetime")
		fsync    = flag.Bool("fsync", false, "fsync the WAL on every write (survive machine crashes, not just process kills)")
		noWAL    = flag.Bool("no-wal", false, "disable the write-ahead log (persist on snapshot only)")
	)
	flag.Parse()
	if *statef == "" {
		*statef = *snapshot
	}

	st := umac.NewStore()
	if *statef != "" {
		var opts []umac.StoreOption
		if *noWAL {
			opts = append(opts, umac.StoreWithoutWAL())
		}
		if *fsync {
			opts = append(opts, umac.StoreWithFsync())
		}
		loaded, err := umac.OpenStore(*statef, opts...)
		if err != nil {
			log.Fatalf("amserver: open state: %v", err)
		}
		st = loaded
		if n := st.WALSize(); n > 0 {
			log.Printf("amserver: replayed %d bytes of write-ahead log", n)
		}
	}
	base := *baseURL
	if base == "" {
		base = "http://localhost" + *addr
	}
	authMgr := umac.NewAM(umac.AMConfig{
		Name:     *name,
		BaseURL:  base,
		Store:    st,
		TokenTTL: *tokenTTL,
		Notifier: &umac.Outbox{},
	})

	srv := &http.Server{Addr: *addr, Handler: authMgr.Handler()}
	go func() {
		log.Printf("amserver: %s listening on %s (base URL %s)", *name, *addr, base)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("amserver: %v", err)
		}
	}()

	save := func() {
		if *statef == "" {
			return
		}
		if err := st.Snapshot(*statef); err != nil {
			log.Printf("amserver: snapshot: %v", err)
		}
	}
	if *statef != "" {
		go func() {
			ticker := time.NewTicker(*every)
			defer ticker.Stop()
			for range ticker.C {
				save()
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println()
	log.Print("amserver: shutting down")
	// Flip /v1/readyz to 503 first so load balancers drain this instance
	// before the listener goes away.
	authMgr.SetDraining(true)
	save()
	if err := authMgr.Close(); err != nil {
		log.Printf("amserver: close am: %v", err)
	}
	if err := st.Close(); err != nil {
		log.Printf("amserver: close store: %v", err)
	}
	srv.Close()
}
