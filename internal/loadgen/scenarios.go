package loadgen

import (
	"context"
	"errors"
	"fmt"
	"time"

	"umac/internal/amclient"
	"umac/internal/core"
	"umac/internal/policy"
	"umac/internal/sim"
)

// ackedWrite is one policy write a scenario saw acknowledged; the verify
// phases re-read every one of them and count the missing as Lost.
type ackedWrite struct {
	owner core.UserID
	id    core.PolicyID
}

// setupOwners provisions each owner's full protocol fixture (pairing,
// realm, permit policy, token, shard-routed clients) over the proxied
// HTTP surface, timing each as one op of the given phase.
func setupOwners(ctx context.Context, rig *Rig, rec *Recorder, phase string, owners []core.UserID) (map[core.UserID]*sim.ClusterOwnerRig, error) {
	ph := rec.Phase(phase)
	defer ph.End()
	rigs := make(map[core.UserID]*sim.ClusterOwnerRig, len(owners))
	for _, owner := range owners {
		if err := checkCtx(ctx, phase); err != nil {
			return nil, err
		}
		err := ph.Op(func() error {
			r, err := sim.SetupClusterOwner(rig.ClientConfig(), owner)
			if err != nil {
				return err
			}
			rigs[owner] = r
			return nil
		})
		if err != nil {
			return nil, phaseErr(phase, err)
		}
	}
	return rigs, nil
}

// verifyAcked re-reads every acknowledged write through read, tallying
// the missing into the phase's Lost counter. It returns an error when
// anything was lost — the zero-loss contract is a hard failure, not a
// statistic.
func verifyAcked(ctx context.Context, rec *Recorder, phase string, acked []ackedWrite, read func(ackedWrite) error) error {
	ph := rec.Phase(phase)
	defer ph.End()
	for _, w := range acked {
		if err := checkCtx(ctx, phase); err != nil {
			return err
		}
		w := w
		if err := ph.Op(func() error { return read(w) }); err != nil {
			ph.Lost++
		}
	}
	if ph.Lost > 0 {
		return phaseErr(phase, fmt.Errorf("%d of %d acknowledged writes lost", ph.Lost, len(acked)))
	}
	return nil
}

// ZipfHotOwner drives Zipf-distributed decision traffic (with a 20%%
// write mix) over owners spread across both shards — then repeats the
// storm with injected latency on the hot shard's client paths, proving
// the mixed-tenant decision path stays correct when the popular shard
// slows down.
func ZipfHotOwner(ctx context.Context, rig *Rig, opts Options) (*Recorder, error) {
	rec := &Recorder{Scenario: "zipf_hot_owner"}
	owners := append(rig.OwnersFor("zipf", "shard-a", (opts.Owners+1)/2),
		rig.OwnersFor("zipf", "shard-b", opts.Owners/2)...)
	rigs, err := setupOwners(ctx, rig, rec, "setup", owners)
	if err != nil {
		return rec, err
	}
	picker := NewOwnerPicker(owners, opts.Seed, 1.3)

	var acked []ackedWrite
	storm := func(phase string) error {
		ph := rec.Phase(phase)
		defer ph.End()
		for i := 0; i < opts.Ops; i++ {
			if err := checkCtx(ctx, phase); err != nil {
				return err
			}
			owner := picker.Pick()
			or := rigs[owner]
			if i%5 == 0 {
				id := core.PolicyID("")
				err := ph.Op(func() error {
					var werr error
					id, werr = or.WritePolicy(i)
					return werr
				})
				if err != nil {
					return phaseErr(phase, err)
				}
				acked = append(acked, ackedWrite{owner, id})
			} else if err := ph.Op(or.Decide); err != nil {
				return phaseErr(phase, err)
			}
		}
		return nil
	}
	if err := storm("storm"); err != nil {
		return rec, err
	}

	// The hot shard (rank-0 owner's home) turns slow: 25ms on both of its
	// client paths. Correctness must hold; only latency may move.
	hot := rig.Ring.Owner(owners[0]).Name
	for _, n := range rig.Nodes {
		if n.Shard == hot {
			n.Proxy.SetLatency(25 * time.Millisecond)
		}
	}
	err = storm("storm_slow")
	for _, n := range rig.Nodes {
		n.Proxy.SetLatency(0)
	}
	if err != nil {
		return rec, err
	}

	return rec, verifyAcked(ctx, rec, "verify", acked, func(w ackedWrite) error {
		_, err := rigs[w.owner].Manager.GetPolicy(w.owner, w.id)
		return err
	})
}

// PairingChurn cycles the IoT pairing lifecycle — confirm, exchange,
// protect, policy, token, decide, revoke — with fresh owners every cycle,
// the second half under injected latency on every client path. A revoked
// pairing must stop deciding immediately; policies written during the
// churn must survive it.
func PairingChurn(ctx context.Context, rig *Rig, opts Options) (*Recorder, error) {
	rec := &Recorder{Scenario: "pairing_churn"}
	var acked []ackedWrite
	rigs := make(map[core.UserID]*sim.ClusterOwnerRig)

	cycle := func(ph *PhaseRec, i int) error {
		owner := core.UserID(fmt.Sprintf("churn-%d", i))
		var or *sim.ClusterOwnerRig
		if err := ph.Op(func() error {
			r, err := sim.SetupClusterOwner(rig.ClientConfig(), owner)
			or = r
			return err
		}); err != nil {
			return err
		}
		rigs[owner] = or
		if err := ph.Op(or.Decide); err != nil {
			return err
		}
		id, err := or.WritePolicy(i)
		if err != nil {
			return err
		}
		acked = append(acked, ackedWrite{owner, id})
		if err := ph.Op(func() error {
			return or.Manager.RevokePairing(owner, or.Pairing.PairingID)
		}); err != nil {
			return err
		}
		// The revoked channel must be dead: a decision signed with it has
		// to fail. Not timed as an op — it is an assertion, not load.
		if or.Decide() == nil {
			return fmt.Errorf("decision succeeded over revoked pairing of %s", owner)
		}
		return nil
	}

	churn := func(phase string, lo, hi int) error {
		ph := rec.Phase(phase)
		defer ph.End()
		for i := lo; i < hi; i++ {
			if err := checkCtx(ctx, phase); err != nil {
				return err
			}
			if err := cycle(ph, i); err != nil {
				return phaseErr(phase, err)
			}
		}
		return nil
	}
	// Churn cycles are ~7 HTTP calls each; size them down so a smoke run
	// stays in seconds.
	cycles := opts.Ops / 4
	if cycles < 4 {
		cycles = 4
	}
	half := (cycles + 1) / 2
	if err := churn("churn", 0, half); err != nil {
		return rec, err
	}
	for _, n := range rig.Nodes {
		n.Proxy.SetLatency(20 * time.Millisecond)
	}
	err := churn("churn_slow", half, cycles)
	for _, n := range rig.Nodes {
		n.Proxy.SetLatency(0)
	}
	if err != nil {
		return rec, err
	}

	return rec, verifyAcked(ctx, rec, "verify", acked, func(w ackedWrite) error {
		_, err := rigs[w.owner].Manager.GetPolicy(w.owner, w.id)
		return err
	})
}

// DelegationChain builds a custodian chain across both shards — each
// owner appoints the next as custodian — then has every custodian write a
// policy on the ward's behalf (a cross-shard write whenever neighbours
// live on different shards) and walks the chain with decision queries.
func DelegationChain(ctx context.Context, rig *Rig, opts Options) (*Recorder, error) {
	rec := &Recorder{Scenario: "delegation_chain"}
	// Interleave shard-a and shard-b residents so nearly every
	// custodian→ward hop crosses shards.
	a := rig.OwnersFor("chain", "shard-a", (opts.Owners+1)/2)
	b := rig.OwnersFor("chain", "shard-b", opts.Owners/2)
	var owners []core.UserID
	for i := 0; i < len(a) || i < len(b); i++ {
		if i < len(a) {
			owners = append(owners, a[i])
		}
		if i < len(b) {
			owners = append(owners, b[i])
		}
	}
	rigs, err := setupOwners(ctx, rig, rec, "setup", owners)
	if err != nil {
		return rec, err
	}

	appoint := rec.Phase("appoint")
	for i := 0; i+1 < len(owners); i++ {
		if err := checkCtx(ctx, "appoint"); err != nil {
			appoint.End()
			return rec, err
		}
		ward, cust := owners[i], owners[i+1]
		if err := appoint.Op(func() error {
			_, err := rigs[ward].Manager.AddCustodian(ward, cust)
			return err
		}); err != nil {
			appoint.End()
			return rec, phaseErr("appoint", err)
		}
	}
	appoint.End()

	// Custodians write on their wards' behalf: the policy names the ward
	// as owner, so the shard-aware client routes it to the ward's shard —
	// while the session identity is the custodian's.
	var acked []ackedWrite
	writes := rec.Phase("chain_write")
	for i := 0; i+1 < len(owners); i++ {
		if err := checkCtx(ctx, "chain_write"); err != nil {
			writes.End()
			return rec, err
		}
		ward, cust := owners[i], owners[i+1]
		var id core.PolicyID
		if err := writes.Op(func() error {
			p, err := rigs[cust].Manager.CreatePolicy(policy.Policy{
				Owner: ward, Kind: policy.KindGeneral,
				Rules: []policy.Rule{{
					Effect:   policy.EffectPermit,
					Subjects: []policy.Subject{{Type: policy.SubjectUser, Name: fmt.Sprintf("delegate-%d", i)}},
					Actions:  []core.Action{core.ActionRead},
				}},
			})
			id = p.ID
			return err
		}); err != nil {
			writes.End()
			return rec, phaseErr("chain_write", err)
		}
		acked = append(acked, ackedWrite{ward, id})
	}
	writes.End()

	walk := rec.Phase("chain_walk")
	for i := 0; i < opts.Ops; i++ {
		if err := checkCtx(ctx, "chain_walk"); err != nil {
			walk.End()
			return rec, err
		}
		if err := walk.Op(rigs[owners[i%len(owners)]].Decide); err != nil {
			walk.End()
			return rec, phaseErr("chain_walk", err)
		}
	}
	walk.End()

	return rec, verifyAcked(ctx, rec, "verify", acked, func(w ackedWrite) error {
		_, err := rigs[w.owner].Manager.GetPolicy(w.owner, w.id)
		return err
	})
}

// KillMigration SIGKILLs shard-a's primary in the middle of a live owner
// migration (right after the snapshot import, before cutover), keeps
// decision traffic flowing through shard-a's follower, restarts the
// primary from its WAL, retries the migration to completion, and audits
// the full acknowledged-write set across both shards. The losing shard
// must answer wrong_shard for the migrated owner afterwards.
func KillMigration(ctx context.Context, rig *Rig, opts Options) (*Recorder, error) {
	rec := &Recorder{Scenario: "kill_migration"}
	mover := rig.OwnersFor("mover", "shard-a", 1)[0]
	stay := rig.OwnersFor("stay", "shard-a", 1)[0]
	rigs, err := setupOwners(ctx, rig, rec, "setup", []core.UserID{mover, stay})
	if err != nil {
		return rec, err
	}

	var acked []ackedWrite
	load := func(phase string, ops int, write bool) error {
		ph := rec.Phase(phase)
		defer ph.End()
		for i := 0; i < ops; i++ {
			if err := checkCtx(ctx, phase); err != nil {
				return err
			}
			owner := mover
			if i%2 == 1 {
				owner = stay
			}
			or := rigs[owner]
			if write && i%3 == 0 {
				var id core.PolicyID
				err := ph.Op(func() error {
					var werr error
					id, werr = or.WritePolicy(i)
					return werr
				})
				if err != nil {
					return phaseErr(phase, err)
				}
				acked = append(acked, ackedWrite{owner, id})
			} else if err := ph.Op(or.Decide); err != nil {
				return phaseErr(phase, err)
			}
		}
		return nil
	}
	if err := load("pre_kill_load", opts.Ops, true); err != nil {
		return rec, err
	}

	// Migration attempt 1: the source primary dies right after the
	// snapshot import (step 3) — mid-drill, before any cutover. The drill
	// must fail; the cluster must not lose anything.
	src, dst := rig.AdminClient("a-primary"), rig.AdminClient("b-primary")
	_, err = amclient.MigrateOwner(src, dst, mover, "shard-b", func(step int, msg string) {
		rig.Logf("loadgen: migrate(1) step %d: %s", step, msg)
		if step == 3 {
			rig.Logf("loadgen: killing a-primary mid-migration")
			rig.Nodes["a-primary"].Kill()
		}
	})
	if err == nil {
		return rec, errors.New("loadgen: migration reported success with its source primary dead")
	}
	rig.Logf("loadgen: migrate(1) failed as expected: %v", err)

	// Decisions must keep flowing with the primary dead — shard-a's
	// follower serves them behind the same proxy-listed endpoints.
	if err := load("killed_decisions", opts.Ops/2, false); err != nil {
		return rec, err
	}

	if err := rig.Restart(ctx, "a-primary"); err != nil {
		return rec, phaseErr("restart", err)
	}
	// Every write acknowledged before the kill must have survived the WAL
	// recovery — read straight from the restarted primary.
	direct := func(owner core.UserID) *amclient.Client {
		return amclient.New(amclient.Config{BaseURL: rig.Nodes["a-primary"].URL, User: owner})
	}
	if err := verifyAcked(ctx, rec, "verify_wal", acked, func(w ackedWrite) error {
		_, err := direct(w.owner).GetPolicy(w.id)
		return err
	}); err != nil {
		return rec, err
	}

	// Migration attempt 2: same drill, healthy source — must complete.
	// The snapshot import repeats records attempt 1 already shipped; the
	// import path is idempotent by design.
	retry := rec.Phase("migrate_retry")
	err = retry.Op(func() error {
		rep, err := amclient.MigrateOwner(rig.AdminClient("a-primary"), dst, mover, "shard-b",
			func(step int, msg string) { rig.Logf("loadgen: migrate(2) step %d: %s", step, msg) })
		if err == nil && rep.SnapshotRecords == 0 {
			return errors.New("retry shipped an empty owner closure")
		}
		return err
	})
	retry.End()
	if err != nil {
		return rec, phaseErr("migrate_retry", err)
	}

	// Post-cutover: the mover's traffic lands on shard-b (the client
	// chases the wrong_shard hint); the losing shard answers wrong_shard
	// to anyone who still asks it directly.
	if err := load("post_migration_load", opts.Ops, true); err != nil {
		return rec, err
	}
	probe := amclient.New(amclient.Config{
		BaseURL:   rig.Nodes["a-primary"].URL,
		PairingID: rigs[mover].Pairing.PairingID,
		Secret:    rigs[mover].Pairing.Secret,
	})
	_, err = probe.Decide(core.DecisionQuery{
		Host: rigHost, Realm: rigs[mover].Realm, Resource: "photo",
		Action: core.ActionRead, Token: rigs[mover].Token,
	})
	var ae *core.APIError
	if !errors.As(err, &ae) || ae.Code != core.CodeWrongShard {
		return rec, fmt.Errorf("loadgen: losing shard answered %v for migrated owner, want wrong_shard", err)
	}

	// Final audit: every acknowledged write — pre-kill and post-migration,
	// mover and stay — readable through the shard-routed surface.
	return rec, verifyAcked(ctx, rec, "verify_migrated", acked, func(w ackedWrite) error {
		_, err := rigs[w.owner].Manager.GetPolicy(w.owner, w.id)
		return err
	})
}
