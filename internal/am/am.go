// Package am implements the Authorization Manager (AM), the paper's central
// component: "An Authorization Manager allows a User to define access
// control policies for their online resources in a uniform way irrespective
// of the Web application that hosts those resources. This component makes
// access control decisions based on these policies. It provides
// functionality of a policy administration point (PAP) and a policy
// decision point (PDP) ... An AM also acts as a token service" (Section
// V.A.2).
//
// The AM exposes:
//
//   - a pairing flow establishing the trusted Host↔AM channel (Fig. 3);
//   - a policy administration API with JSON/XML import/export (Section VI);
//   - a token endpoint for Requesters (Fig. 5), with real-time consent and
//     terms/claims extensions (Section V.D);
//   - a decision endpoint for Hosts (Fig. 6);
//   - the consolidated audit view (requirement R4).
package am

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"umac/internal/audit"
	"umac/internal/cluster"
	"umac/internal/core"
	"umac/internal/events"
	"umac/internal/identity"
	"umac/internal/policy"
	"umac/internal/rebalance"
	"umac/internal/store"
	"umac/internal/token"
	"umac/internal/webutil"
)

// Store kinds used by the AM.
const (
	kindPairing   = "pairing"
	kindRealm     = "realm"
	kindPolicy    = "policy"
	kindLinkGen   = "link-general"  // key owner/realm           → linkRecord
	kindLinkSpec  = "link-specific" // key owner/host/resource   → linkRecord
	kindGroup     = "group"         // key owner/group           → []core.UserID
	kindCustodian = "custodian"     // key owner                 → []core.UserID
	kindGrant     = "grant"         // key token claim ID        → grantRecord
)

// Pairing is the durable trust relationship between a Host and this AM.
type Pairing struct {
	ID        string            `json:"id"`
	Host      core.HostID       `json:"host"`
	HostName  string            `json:"host_name"`
	HostURL   string            `json:"host_url"`
	User      core.UserID       `json:"user"`
	Scope     core.PairingScope `json:"scope"`
	Resources []core.ResourceID `json:"resources,omitempty"`
	Secret    string            `json:"secret"`
	CreatedAt time.Time         `json:"created_at"`
	Revoked   bool              `json:"revoked"`
}

// Realm is a protected group of resources registered by a Host on behalf of
// an owner (the Fig. 4 outcome).
type Realm struct {
	Host      core.HostID       `json:"host"`
	Realm     core.RealmID      `json:"realm"`
	Owner     core.UserID       `json:"owner"`
	PairingID string            `json:"pairing_id"`
	Resources []core.ResourceID `json:"resources,omitempty"`
}

// linkRecord binds a realm or resource to a policy.
type linkRecord struct {
	Policy core.PolicyID `json:"policy"`
}

// grantRecord remembers the context under which a token was issued, so
// decision queries re-evaluate with the same satisfied obligations (the
// consent the user gave, the claims the requester presented). Owner is the
// realm owner the grant was issued against: the key the sharded cluster's
// owner-closure stream filters grants by (absent in pre-cluster records,
// which decode with an empty owner and simply never migrate).
type grantRecord struct {
	Owner          core.UserID       `json:"owner,omitempty"`
	Requester      core.RequesterID  `json:"requester"`
	Subject        core.UserID       `json:"subject,omitempty"`
	Claims         map[string]string `json:"claims,omitempty"`
	ConsentGranted bool              `json:"consent_granted,omitempty"`
}

// Config configures an AM.
type Config struct {
	// Name identifies this AM in traces and redirects (e.g. "copmonkey").
	Name string
	// BaseURL is the externally reachable URL of the AM, used in redirect
	// legs. Set after the HTTP listener is bound.
	BaseURL string
	// Store persists AM state; nil means a fresh in-memory store.
	Store *store.Store
	// TokenKey is the token-service master key; empty means random.
	TokenKey []byte
	// TokenTTL bounds authorization-token lifetime; 0 means the default.
	TokenTTL time.Duration
	// DefaultCacheTTL is the decision-cache TTL handed to Hosts when the
	// deciding policy does not set one. Zero means DefaultDecisionCacheTTL.
	DefaultCacheTTL time.Duration
	// Auth authenticates browser-facing requests; nil means
	// identity.HeaderAuth{}.
	Auth identity.Authenticator
	// Notifier delivers consent requests to users; nil means notifications
	// are dropped (consent can still be resolved via the API).
	Notifier Notifier
	// Tracer records protocol events; nil disables tracing.
	Tracer *core.Tracer
	// Replication selects the node's role in a replicated deployment
	// (primary streaming its WAL, or follower applying it and serving
	// reads only). The zero value is a standalone AM.
	Replication ReplicationConfig
	// Cluster places the node in a sharded multi-primary cluster: a
	// consistent-hash ring maps each resource owner to one shard (a
	// replication group), and owner-scoped routes answer wrong_shard when
	// the owner hashes elsewhere. The zero value is an unsharded AM.
	Cluster ClusterConfig
	// DisableDecisionIndex turns off the compiled decision index, so
	// every decision resolves links and scans policies directly from the
	// store. This exists to measure the index (benchmarks) and to
	// differential-test the two paths; production configurations leave
	// it off.
	DisableDecisionIndex bool
	// Events sizes the streaming event control plane (GET /v1/events).
	// The zero value uses the broker defaults.
	Events EventsConfig
	// Abuse enables the per-tenant token-bucket rate limiter (pairing /
	// session / remote-IP tiers). The zero value disables it.
	Abuse AbuseConfig
}

// DefaultDecisionCacheTTL is the fallback Host decision-cache TTL.
const DefaultDecisionCacheTTL = 60 * time.Second

// AM is an Authorization Manager instance.
type AM struct {
	name      string
	baseURL   string
	store     *store.Store
	tokens    *token.Service
	groups    *groupStore
	engine    *policy.Engine
	index     *decisionIndex
	audit     *audit.Log
	auditPipe *audit.Pipeline
	auth      identity.Authenticator
	notifier  Notifier
	tracer    *core.Tracer
	cacheTTL  time.Duration

	// broker fans control-plane events (invalidation, consent,
	// replication) out to /v1/events subscribers; eventsCfg carries the
	// SSE serving knobs (see events.go).
	broker    *events.Broker
	eventsCfg EventsConfig

	// limiter is the per-tenant admission controller (nil = abuse
	// controls disabled; see ratelimit.go).
	limiter *webutil.RateLimiter

	// draining flips the /v1/readyz probe to 503 so load balancers stop
	// routing new traffic ahead of a shutdown.
	draining atomic.Bool
	// routes is the table the last Handler call registered (guarded by
	// mu; the metrics registry itself lives in the handler closure).
	routes []RouteInfo

	// clusterCfg is the node's shard membership (see cluster.go); the
	// zero value disables ownership gating. ringPtr holds the ring
	// currently in force — seeded from clusterCfg.Ring, superseded by
	// persisted installs (PUT /v1/cluster/ring, replication) — swapped
	// atomically so routing reads never lock. migMu is the migration
	// barrier: gated mutations hold it read-side for their whole
	// duration, SetOwnerShard and ring installs write-lock it to flip
	// ownership. rebal is the embedded rebalance coordinator (sharded
	// primaries only; see rebalance.go in this package).
	clusterCfg ClusterConfig
	ringPtr    atomic.Pointer[cluster.Ring]
	migMu      sync.RWMutex
	rebal      *rebalance.Coordinator

	// Replication state (see replication.go). roleFollower gates writes;
	// the remaining fields are the follower sync loop's telemetry.
	replCfg        ReplicationConfig
	roleFollower   atomic.Bool
	replConnected  atomic.Bool
	replPrimarySeq atomic.Int64
	replApplied    atomic.Int64
	replCtx        context.Context
	replCancel     context.CancelFunc
	replStopOnce   sync.Once
	replDone       chan struct{}

	mu       sync.Mutex
	pending  map[string]pendingPairing // one-time pairing codes
	consents map[string]*consentTicket
	inval    *invalidator
}

// pendingPairing is a one-time code awaiting Host exchange (the back leg of
// Fig. 3).
type pendingPairing struct {
	req       core.PairingRequest
	expiresAt time.Time
}

// pairingCodeTTL bounds how long a confirmation code stays exchangeable.
const pairingCodeTTL = 5 * time.Minute

// New constructs an AM from cfg.
func New(cfg Config) *AM {
	st := cfg.Store
	if st == nil {
		st = store.New()
	}
	auth := cfg.Auth
	if auth == nil {
		auth = identity.HeaderAuth{}
	}
	cacheTTL := cfg.DefaultCacheTTL
	if cacheTTL <= 0 {
		cacheTTL = DefaultDecisionCacheTTL
	}
	name := cfg.Name
	if name == "" {
		name = "am"
	}
	a := &AM{
		name:       name,
		baseURL:    cfg.BaseURL,
		store:      st,
		tokens:     token.NewService(cfg.TokenKey, cfg.TokenTTL),
		audit:      &audit.Log{},
		auth:       auth,
		notifier:   cfg.Notifier,
		tracer:     cfg.Tracer,
		cacheTTL:   cacheTTL,
		replCfg:    cfg.Replication,
		clusterCfg: cfg.Cluster,
		limiter:    newLimiter(cfg.Abuse),
		pending:    make(map[string]pendingPairing),
		consents:   make(map[string]*consentTicket),
	}
	a.auditPipe = audit.NewPipeline(a.audit, 0)
	a.groups = newGroupStore(st)
	a.engine = policy.NewEngine(a.groups)
	if !cfg.DisableDecisionIndex {
		a.index = newDecisionIndex()
	}
	a.eventsCfg = cfg.Events.withDefaults()
	// The broker must exist before the replication loop starts: the
	// follower sync path publishes replication signals from its goroutine.
	a.broker = events.New(events.Options{
		SubscriberBuffer: a.eventsCfg.SubscriberBuffer,
		ReplayWindow:     a.eventsCfg.ReplayWindow,
	})
	// Seed the live ring from config, then let a persisted install (a
	// rebalance the previous process ran before dying) supersede it.
	if cfg.Cluster.enabled() {
		a.ringPtr.Store(cfg.Cluster.Ring)
		a.restoreRing()
	}
	a.startReplication()
	// Sharded primaries embed the rebalance coordinator; an unfinished
	// checkpointed plan resumes automatically — the crash-recovery half of
	// the coordinator's resumability contract.
	a.setupRebalance()
	return a
}

// Close stops the follower replication loop (if any), shuts the event
// broker down (every /v1/events subscriber drains and disconnects), and
// flushes the asynchronous audit pipeline. The backing store is the
// caller's to close (it may be shared).
func (a *AM) Close() error {
	a.stopReplication()
	a.broker.Close()
	a.auditPipe.Close()
	return nil
}

// Events exposes the control-plane broker so embedding processes (sims,
// tests) can subscribe in-process without an HTTP round-trip.
func (a *AM) Events() *events.Broker { return a.broker }

// SetDraining marks the AM as (not) draining: while draining, the
// /v1/readyz probe answers 503 so load balancers pull the instance out of
// rotation ahead of shutdown. Serving routes keep working either way.
func (a *AM) SetDraining(v bool) { a.draining.Store(v) }

// Draining reports the drain flag.
func (a *AM) Draining() bool { return a.draining.Load() }

// Name returns the AM's display name.
func (a *AM) Name() string { return a.name }

// BaseURL returns the AM's externally reachable URL.
func (a *AM) BaseURL() string { return a.baseURL }

// SetBaseURL records the externally reachable URL once the listener is
// bound (httptest servers learn their URL only after start).
func (a *AM) SetBaseURL(u string) { a.baseURL = u }

// Audit exposes the consolidated audit log. It flushes the asynchronous
// decision-event pipeline first, so every decision issued before the call
// is visible to the returned log's queries.
func (a *AM) Audit() *audit.Log {
	a.auditPipe.Flush()
	return a.audit
}

// Store exposes the backing store (snapshots, tooling).
func (a *AM) Store() *store.Store { return a.store }

// trace records a protocol event if tracing is enabled.
func (a *AM) trace(phase core.Phase, from, to, op, detail string) {
	a.tracer.Record(phase, from, to, op, detail)
}

// --- Pairing (Fig. 3) ---

// ApprovePairing registers the user's consent to delegate the Host's access
// control to this AM and returns the one-time code the Host exchanges for
// the channel secret. It is invoked from the browser-redirect leg of Fig. 3
// after the AM has authenticated the user.
func (a *AM) ApprovePairing(req core.PairingRequest) (string, error) {
	if req.Host == "" || req.User == "" {
		return "", fmt.Errorf("am: pairing requires host and user")
	}
	if req.Scope == 0 {
		req.Scope = core.PairingScopeUser
	}
	release, err := a.gateOwner(req.User)
	if err != nil {
		return "", err
	}
	defer release()
	code := core.NewID("code")
	a.mu.Lock()
	a.pending[code] = pendingPairing{req: req, expiresAt: time.Now().Add(pairingCodeTTL)}
	a.mu.Unlock()
	a.trace(core.PhaseDelegatingAccessControl, "user:"+string(req.User), "am:"+a.name,
		"approve-pairing", string(req.Host))
	return code, nil
}

// ExchangeCode completes Fig. 3: the Host presents the one-time code and
// receives the pairing identifier plus the channel secret. The code is
// consumed whether or not the exchange succeeds.
func (a *AM) ExchangeCode(code string, host core.HostID) (core.PairingResponse, error) {
	a.mu.Lock()
	p, ok := a.pending[code]
	a.mu.Unlock()
	if !ok || time.Now().After(p.expiresAt) {
		a.mu.Lock()
		delete(a.pending, code)
		a.mu.Unlock()
		return core.PairingResponse{}, fmt.Errorf("am: unknown or expired pairing code")
	}
	// The approve leg was gated, but the owner may have been flipped to
	// another shard between approve and exchange; the pairing record must
	// not be written to a shard that no longer owns it. Gate BEFORE
	// consuming the one-time code: wrong_shard is retryable, and a
	// retryable answer must not destroy the state the retry needs.
	release, err := a.gateOwner(p.req.User)
	if err != nil {
		return core.PairingResponse{}, err
	}
	defer release()
	a.mu.Lock()
	_, ok = a.pending[code]
	delete(a.pending, code)
	a.mu.Unlock()
	if !ok {
		// A concurrent exchange consumed it between the read and here.
		return core.PairingResponse{}, fmt.Errorf("am: unknown or expired pairing code")
	}
	if p.req.Host != host {
		return core.PairingResponse{}, fmt.Errorf("am: pairing code issued for host %q, presented by %q", p.req.Host, host)
	}
	pairing := Pairing{
		ID:        core.NewID("pair"),
		Host:      p.req.Host,
		HostName:  p.req.HostName,
		HostURL:   p.req.HostURL,
		User:      p.req.User,
		Scope:     p.req.Scope,
		Resources: p.req.Resources,
		Secret:    core.NewSecret(32),
		CreatedAt: time.Now(),
	}
	if _, err := a.store.Put(kindPairing, pairing.ID, pairing); err != nil {
		return core.PairingResponse{}, fmt.Errorf("am: persist pairing: %w", err)
	}
	a.audit.Append(audit.Event{
		Type: audit.EventPairingCreated, Owner: pairing.User, Host: pairing.Host,
		Detail: pairing.ID,
	})
	a.trace(core.PhaseDelegatingAccessControl, "host:"+string(host), "am:"+a.name,
		"exchange-code", pairing.ID)
	return core.PairingResponse{
		PairingID: pairing.ID,
		Secret:    pairing.Secret,
		AM:        a.baseURL,
		User:      pairing.User,
	}, nil
}

// PairingSecret implements httpsig.SecretSource: revoked pairings stop
// verifying immediately.
func (a *AM) PairingSecret(pairingID string) (string, bool) {
	var p Pairing
	if _, err := a.store.Get(kindPairing, pairingID, &p); err != nil || p.Revoked {
		return "", false
	}
	return p.Secret, true
}

// GetPairing returns a pairing by ID.
func (a *AM) GetPairing(id string) (Pairing, error) {
	var p Pairing
	if _, err := a.store.Get(kindPairing, id, &p); err != nil {
		return Pairing{}, fmt.Errorf("am: %w", core.ErrNotPaired)
	}
	return p, nil
}

// RevokePairing severs the trust relationship; the Host's signed calls stop
// verifying and its realms stop resolving.
func (a *AM) RevokePairing(id string) error {
	var p Pairing
	if _, err := a.store.Get(kindPairing, id, &p); err != nil {
		return fmt.Errorf("am: %w", core.ErrNotPaired)
	}
	// Gate on the pairing's owner: a migrated-away owner's revoke must be
	// re-routed to the owning shard, not acknowledged against this
	// shard's stale copy (which would leave the authoritative pairing
	// un-revoked).
	release, err := a.gateOwner(p.User)
	if err != nil {
		return err
	}
	defer release()
	_, err = a.store.Update(kindPairing, id, &p, func(exists bool) (any, error) {
		if !exists {
			return nil, fmt.Errorf("am: %w", core.ErrNotPaired)
		}
		p.Revoked = true
		return p, nil
	})
	if err != nil {
		return err
	}
	a.audit.Append(audit.Event{
		Type: audit.EventPairingRevoked, Owner: p.User, Host: p.Host, Detail: id,
	})
	return nil
}

// Pairings lists pairings created by the given user.
func (a *AM) Pairings(user core.UserID) []Pairing {
	entities := a.store.List(kindPairing)
	var out []Pairing
	for _, e := range entities {
		var p Pairing
		if err := e.Decode(&p); err != nil {
			continue
		}
		if p.User == user {
			out = append(out, p)
		}
	}
	return out
}

// --- Realms ---

// RegisterRealm records a Host-registered protected realm (invoked from the
// signed /api/protect endpoint). The pairing must belong to the same Host,
// and the registration must fall inside the pairing's delegation scope
// (Section V.A.3: "access control can be delegated to AM either for the
// entire application, for individual Users only or for individual
// resources").
func (a *AM) RegisterRealm(pairingID string, req core.ProtectRequest) (core.ProtectResponse, error) {
	p, err := a.GetPairing(pairingID)
	if err != nil {
		return core.ProtectResponse{}, err
	}
	if req.Realm == "" {
		return core.ProtectResponse{}, fmt.Errorf("am: protect requires a realm")
	}
	owner := req.User
	if owner == "" {
		owner = p.User
	}
	release, err := a.gateOwner(owner)
	if err != nil {
		return core.ProtectResponse{}, err
	}
	defer release()
	switch p.Scope {
	case core.PairingScopeApplication:
		// The whole application is delegated: any owner, any resource.
	case core.PairingScopeUser:
		// Only the pairing user's resources are delegated.
		if owner != p.User {
			return core.ProtectResponse{}, fmt.Errorf(
				"am: pairing %s is scoped to user %q; cannot protect resources of %q",
				pairingID, p.User, owner)
		}
	case core.PairingScopeResources:
		// Only the explicitly enumerated resources are delegated.
		if owner != p.User {
			return core.ProtectResponse{}, fmt.Errorf(
				"am: pairing %s is scoped to user %q; cannot protect resources of %q",
				pairingID, p.User, owner)
		}
		allowed := make(map[core.ResourceID]bool, len(p.Resources))
		for _, r := range p.Resources {
			allowed[r] = true
		}
		if len(req.Resources) == 0 {
			return core.ProtectResponse{}, fmt.Errorf(
				"am: pairing %s is resource-scoped; protect must enumerate resources", pairingID)
		}
		for _, r := range req.Resources {
			if !allowed[r] {
				return core.ProtectResponse{}, fmt.Errorf(
					"am: resource %q is outside the scope of pairing %s", r, pairingID)
			}
		}
	}
	r := Realm{
		Host:      p.Host,
		Realm:     req.Realm,
		Owner:     owner,
		PairingID: pairingID,
		Resources: req.Resources,
	}
	if _, err := a.store.Put(kindRealm, realmKey(p.Host, req.Realm), r); err != nil {
		return core.ProtectResponse{}, fmt.Errorf("am: persist realm: %w", err)
	}
	if req.Policy != "" {
		// The gate is already held for this owner; the ungated core avoids
		// a recursive barrier RLock (deadlock against a queued cutover).
		if err := a.linkGeneralGated(owner, req.Realm, req.Policy); err != nil {
			return core.ProtectResponse{}, err
		}
	}
	a.audit.Append(audit.Event{
		Type: audit.EventResourceLinked, Owner: owner, Host: p.Host,
		Realm: req.Realm, Detail: fmt.Sprintf("%d resources", len(req.Resources)),
	})
	a.trace(core.PhaseComposingPolicies, "host:"+string(p.Host), "am:"+a.name,
		"register-realm", string(req.Realm))
	return core.ProtectResponse{Realm: req.Realm, Policy: req.Policy}, nil
}

// LookupRealm resolves a (host, realm) pair.
func (a *AM) LookupRealm(host core.HostID, realm core.RealmID) (Realm, error) {
	var r Realm
	if _, err := a.store.Get(kindRealm, realmKey(host, realm), &r); err != nil {
		return Realm{}, fmt.Errorf("%w: %s at %s", core.ErrUnknownRealm, realm, host)
	}
	return r, nil
}

func realmKey(host core.HostID, realm core.RealmID) string {
	return string(host) + "/" + string(realm)
}
