package identity

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"umac/internal/core"
)

func TestHeaderAuth(t *testing.T) {
	r, _ := http.NewRequest(http.MethodGet, "http://x/", nil)
	var a HeaderAuth
	if _, ok := a.Authenticate(r); ok {
		t.Fatal("anonymous request authenticated")
	}
	r.Header.Set(DefaultUserHeader, "bob")
	user, ok := a.Authenticate(r)
	if !ok || user != "bob" {
		t.Fatalf("user=%q ok=%v", user, ok)
	}
	custom := HeaderAuth{Header: "X-Custom"}
	if _, ok := custom.Authenticate(r); ok {
		t.Fatal("custom header read default")
	}
	r.Header.Set("X-Custom", "alice")
	if user, _ := custom.Authenticate(r); user != "alice" {
		t.Fatalf("user = %q", user)
	}
}

func TestLoginAndVerify(t *testing.T) {
	p := NewProvider(0)
	p.Register("bob", "hunter2")
	a, err := p.Login("bob", "hunter2")
	if err != nil {
		t.Fatal(err)
	}
	user, err := p.VerifyAssertion(a)
	if err != nil || user != "bob" {
		t.Fatalf("user=%q err=%v", user, err)
	}
}

func TestLoginRejectsBadCredentials(t *testing.T) {
	p := NewProvider(0)
	p.Register("bob", "hunter2")
	if _, err := p.Login("bob", "wrong"); err == nil {
		t.Fatal("wrong password accepted")
	}
	if _, err := p.Login("ghost", "x"); err == nil {
		t.Fatal("unknown user accepted")
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	p := NewProvider(0)
	p.Register("bob", "pw")
	a, _ := p.Login("bob", "pw")
	for name, bad := range map[string]string{
		"empty":     "",
		"no dot":    strings.ReplaceAll(a, ".", ""),
		"bad b64":   "!!!." + strings.Split(a, ".")[1],
		"truncated": a[:len(a)-3],
	} {
		if _, err := p.VerifyAssertion(bad); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Assertion from another provider.
	p2 := NewProvider(0)
	p2.Register("bob", "pw")
	a2, _ := p2.Login("bob", "pw")
	if _, err := p.VerifyAssertion(a2); err == nil {
		t.Error("cross-provider assertion accepted")
	}
}

func TestAssertionExpiry(t *testing.T) {
	p := NewProvider(time.Minute)
	p.Register("bob", "pw")
	base := time.Now()
	now := base
	p.now = func() time.Time { return now }
	a, _ := p.Login("bob", "pw")
	now = base.Add(2 * time.Minute)
	if _, err := p.VerifyAssertion(a); err == nil {
		t.Fatal("expired assertion accepted")
	}
}

func TestLoginHandlerRedirect(t *testing.T) {
	p := NewProvider(0)
	p.Register("bob", "pw")
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Get(srv.URL + "/login?user=bob&password=pw&return_to=" +
		url.QueryEscape("http://host.example/pair/callback?state=7"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	loc, err := url.Parse(resp.Header.Get("Location"))
	if err != nil {
		t.Fatal(err)
	}
	if loc.Host != "host.example" || loc.Query().Get("state") != "7" {
		t.Fatalf("location = %s", loc)
	}
	if _, err := p.VerifyAssertion(loc.Query().Get("assertion")); err != nil {
		t.Fatalf("assertion invalid: %v", err)
	}
}

func TestLoginHandlerJSONWithoutReturnTo(t *testing.T) {
	p := NewProvider(0)
	p.Register("bob", "pw")
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/login?user=bob&password=pw")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestLoginHandlerRejectsBadPassword(t *testing.T) {
	p := NewProvider(0)
	p.Register("bob", "pw")
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/login?user=bob&password=nope&return_to=http://h/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestSessions(t *testing.T) {
	p := NewProvider(0)
	p.Register("bob", "pw")
	s := NewSessions(p)
	a, _ := p.Login("bob", "pw")

	rec := httptest.NewRecorder()
	user, err := s.Establish(rec, a)
	if err != nil || user != "bob" {
		t.Fatalf("user=%q err=%v", user, err)
	}
	cookies := rec.Result().Cookies()
	if len(cookies) != 1 {
		t.Fatalf("cookies = %d", len(cookies))
	}

	r, _ := http.NewRequest(http.MethodGet, "http://host/", nil)
	r.AddCookie(cookies[0])
	got, ok := s.Authenticate(r)
	if !ok || got != "bob" {
		t.Fatalf("got=%q ok=%v", got, ok)
	}

	s.Revoke(r)
	if _, ok := s.Authenticate(r); ok {
		t.Fatal("session survived revoke")
	}
	// Revoking an absent session must not panic.
	plain, _ := http.NewRequest(http.MethodGet, "http://host/", nil)
	s.Revoke(plain)
}

func TestSessionsRejectBadAssertion(t *testing.T) {
	p := NewProvider(0)
	s := NewSessions(p)
	rec := httptest.NewRecorder()
	if _, err := s.Establish(rec, "garbage"); err == nil {
		t.Fatal("established session from garbage")
	}
}

func TestSessionsAnonymous(t *testing.T) {
	s := NewSessions(NewProvider(0))
	r, _ := http.NewRequest(http.MethodGet, "http://host/", nil)
	if _, ok := s.Authenticate(r); ok {
		t.Fatal("anonymous request authenticated")
	}
	r.AddCookie(&http.Cookie{Name: "umac_session", Value: "forged"})
	if _, ok := s.Authenticate(r); ok {
		t.Fatal("forged cookie authenticated")
	}
}

var _ = core.UserID("")
