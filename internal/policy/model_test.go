package policy

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"umac/internal/core"
)

func validPolicy() Policy {
	return Policy{
		ID:    "p1",
		Owner: "bob",
		Name:  "friends-read",
		Kind:  KindGeneral,
		Rules: []Rule{{
			Effect:   EffectPermit,
			Subjects: []Subject{{Type: SubjectGroup, Name: "friends"}},
			Actions:  []core.Action{core.ActionRead},
		}},
	}
}

func TestValidateAccepts(t *testing.T) {
	p := validPolicy()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]func(*Policy){
		"missing id":     func(p *Policy) { p.ID = "" },
		"missing owner":  func(p *Policy) { p.Owner = "" },
		"bad kind":       func(p *Policy) { p.Kind = 0 },
		"no rules":       func(p *Policy) { p.Rules = nil },
		"bad effect":     func(p *Policy) { p.Rules[0].Effect = 0 },
		"no subjects":    func(p *Policy) { p.Rules[0].Subjects = nil },
		"invalid action": func(p *Policy) { p.Rules[0].Actions = []core.Action{"fly"} },
		"empty window":   func(p *Policy) { p.Rules[0].Conditions = []Condition{{Type: CondTimeWindow}} },
		"inverted window": func(p *Policy) {
			p.Rules[0].Conditions = []Condition{{
				Type:      CondTimeWindow,
				NotBefore: time.Date(2026, 1, 2, 0, 0, 0, 0, time.UTC),
				NotAfter:  time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC),
			}}
		},
		"claim without name": func(p *Policy) { p.Rules[0].Conditions = []Condition{{Type: CondRequireClaim}} },
		"unknown condition":  func(p *Policy) { p.Rules[0].Conditions = []Condition{{Type: "warp"}} },
	}
	for name, mutate := range cases {
		p := validPolicy()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid policy", name)
		}
	}
}

func TestSubjectStringParseRoundTrip(t *testing.T) {
	subjects := []Subject{
		{Type: SubjectUser, Name: "alice"},
		{Type: SubjectGroup, Name: "friends"},
		{Type: SubjectRequester, Name: "gallery"},
		{Type: SubjectEveryone},
		{Type: SubjectOwner},
	}
	for _, s := range subjects {
		got, err := ParseSubject(s.String())
		if err != nil {
			t.Fatalf("parse %q: %v", s.String(), err)
		}
		if got != s {
			t.Fatalf("round trip %q: got %+v", s.String(), got)
		}
	}
}

func TestParseSubjectRejects(t *testing.T) {
	for _, in := range []string{"", "user:", "group:", "requester:", "nobody", "admin:root"} {
		if _, err := ParseSubject(in); err == nil {
			t.Errorf("ParseSubject(%q) accepted", in)
		}
	}
}

func TestParseSubjectTrimsSpace(t *testing.T) {
	s, err := ParseSubject("  user:alice \n")
	if err != nil || s.Name != "alice" {
		t.Fatalf("s=%+v err=%v", s, err)
	}
}

func TestKindAndEffectTextRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindGeneral, KindSpecific} {
		b, err := k.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var got Kind
		if err := got.UnmarshalText(b); err != nil || got != k {
			t.Fatalf("kind round trip %v: got %v err %v", k, got, err)
		}
	}
	var k Kind
	if err := k.UnmarshalText([]byte("weird")); err == nil {
		t.Fatal("accepted bad kind")
	}
	for _, e := range []Effect{EffectPermit, EffectDeny} {
		b, _ := e.MarshalText()
		var got Effect
		if err := got.UnmarshalText(b); err != nil || got != e {
			t.Fatalf("effect round trip %v: got %v err %v", e, got, err)
		}
	}
	var e Effect
	if err := e.UnmarshalText([]byte("maybe")); err == nil {
		t.Fatal("accepted bad effect")
	}
}

func samplePolicies() []Policy {
	return []Policy{
		{
			ID: "p1", Owner: "bob", Name: "friends-read", Kind: KindGeneral,
			CacheTTLSeconds: 300,
			Rules: []Rule{{
				Effect:   EffectPermit,
				Subjects: []Subject{{Type: SubjectGroup, Name: "friends"}, {Type: SubjectOwner}},
				Actions:  []core.Action{core.ActionRead, core.ActionList},
			}},
		},
		{
			ID: "p2", Owner: "bob", Name: "paid-download", Kind: KindSpecific,
			Description: "anyone can read after paying",
			Rules: []Rule{{
				Effect:     EffectPermit,
				Subjects:   []Subject{{Type: SubjectEveryone}},
				Actions:    []core.Action{core.ActionRead},
				Conditions: []Condition{{Type: CondRequireClaim, Claim: "payment"}},
			}},
		},
	}
}

func TestExportImportJSON(t *testing.T) {
	var buf bytes.Buffer
	in := samplePolicies()
	if err := Export(&buf, in, FormatJSON); err != nil {
		t.Fatal(err)
	}
	out, err := Import(&buf, FormatJSON)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("json round trip mismatch:\nin:  %+v\nout: %+v", in, out)
	}
}

func TestExportImportXML(t *testing.T) {
	var buf bytes.Buffer
	in := samplePolicies()
	if err := Export(&buf, in, FormatXML); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<policies>") {
		t.Fatalf("xml output missing wrapper: %s", buf.String())
	}
	out, err := Import(bytes.NewReader(buf.Bytes()), FormatXML)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d", len(out))
	}
	for i := range in {
		// XMLName differs after decode; compare the semantic fields.
		if out[i].ID != in[i].ID || out[i].Kind != in[i].Kind ||
			out[i].CacheTTLSeconds != in[i].CacheTTLSeconds ||
			!reflect.DeepEqual(out[i].Rules, in[i].Rules) {
			t.Fatalf("xml round trip mismatch at %d:\nin:  %+v\nout: %+v", i, in[i], out[i])
		}
	}
}

func TestImportValidates(t *testing.T) {
	bad := `[{"id":"","owner":"bob","kind":"general","rules":[]}]`
	if _, err := Import(strings.NewReader(bad), FormatJSON); err == nil {
		t.Fatal("imported invalid policy")
	}
	if _, err := Import(strings.NewReader("{"), FormatJSON); err == nil {
		t.Fatal("imported garbage json")
	}
	if _, err := Import(strings.NewReader("<policies"), FormatXML); err == nil {
		t.Fatal("imported garbage xml")
	}
}

func TestParseFormat(t *testing.T) {
	for in, want := range map[string]Format{
		"json":                       FormatJSON,
		"JSON":                       FormatJSON,
		"application/json":           FormatJSON,
		"xml":                        FormatXML,
		"application/xml":            FormatXML,
		"text/xml; charset=utf-8":    FormatXML,
		"application/json;charset=x": FormatJSON,
	} {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFormat("yaml"); err == nil {
		t.Error("accepted yaml")
	}
	if FormatJSON.ContentType() != "application/json" || FormatXML.ContentType() != "application/xml" {
		t.Error("content types wrong")
	}
}

func TestUnsupportedExportImportFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := Export(&buf, nil, Format("yaml")); err == nil {
		t.Fatal("export accepted yaml")
	}
	if _, err := Import(&buf, Format("yaml")); err == nil {
		t.Fatal("import accepted yaml")
	}
}

func TestPolicyJSONSubjectEncoding(t *testing.T) {
	p := validPolicy()
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"group:friends"`) {
		t.Fatalf("subjects not encoded textually: %s", b)
	}
}

func TestDirectory(t *testing.T) {
	var d Directory
	d.Add("bob", "friends", "alice")
	d.Add("bob", "friends", "chris")
	d.Add("bob", "family", "dana")

	if !d.Member("bob", "friends", "alice") {
		t.Fatal("alice not a member")
	}
	if d.Member("bob", "friends", "dana") {
		t.Fatal("dana leaked into friends")
	}
	if got := d.Members("bob", "friends"); len(got) != 2 || got[0] != "alice" || got[1] != "chris" {
		t.Fatalf("members = %v", got)
	}
	if got := d.Groups("bob"); len(got) != 2 || got[0] != "family" || got[1] != "friends" {
		t.Fatalf("groups = %v", got)
	}

	d.Remove("bob", "friends", "alice")
	if d.Member("bob", "friends", "alice") {
		t.Fatal("alice still a member after remove")
	}
	d.Remove("bob", "friends", "chris")
	if got := d.Groups("bob"); len(got) != 1 {
		t.Fatalf("empty group not pruned: %v", got)
	}
	// Removing from a missing group must not panic.
	d.Remove("nobody", "ghosts", "casper")
}

func TestDirectoryMembershipProperty(t *testing.T) {
	// Property: after Add, Member is true; after Remove, false — for any
	// owner/group/user strings.
	var d Directory
	f := func(owner, group, user string) bool {
		o, u := core.UserID(owner), core.UserID(user)
		d.Add(o, group, u)
		if !d.Member(o, group, u) {
			return false
		}
		d.Remove(o, group, u)
		return !d.Member(o, group, u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEngineDecisionIsAlwaysBinaryProperty(t *testing.T) {
	// Property (paper Section VI): with a general policy present the final
	// decision is exactly permit or deny — never unknown — for arbitrary
	// subjects/actions.
	e := NewEngine(nil)
	general := permitPolicy("g", KindGeneral, everyone(), core.ActionRead)
	specific := denyPolicy("s", KindSpecific, alice(), core.ActionRead)
	actions := []core.Action{core.ActionRead, core.ActionWrite, core.ActionDelete, core.ActionList, core.ActionShare}
	f := func(subject string, actionIdx uint8) bool {
		req := readRequest(core.UserID(subject))
		req.Action = actions[int(actionIdx)%len(actions)]
		res := e.Evaluate(req, general, specific)
		return res.Decision == core.DecisionPermit || res.Decision == core.DecisionDeny
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
