package sim

import (
	"context"
	"fmt"
	"time"

	"umac/internal/am"
)

// This file bounds the sim workloads' long-poll and drain loops. Every
// wait is phase-named and derives its deadline from the caller's context
// (tests pass a testing.T.Context()-derived context), so a hung follower
// or a stalled drain fails in seconds with the phase that stalled —
// instead of parking the whole package on the 10-minute test timeout.

// checkPhase returns a phase-named error when ctx is done — the
// per-iteration guard of the workload loops.
func checkPhase(ctx context.Context, phase string) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("sim: phase %q: %w", phase, err)
	}
	return nil
}

// awaitReplicated waits (in context-interruptible slices) until the
// follower has applied seq, failing with the phase name after timeout or
// when ctx is done first.
func awaitReplicated(ctx context.Context, phase string, f *am.AM, seq int64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if f.WaitReplicated(seq, 200*time.Millisecond) {
			return nil
		}
		if err := checkPhase(ctx, phase); err != nil {
			return err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("sim: phase %q: follower still behind seq %d after %v", phase, seq, timeout)
		}
	}
}
