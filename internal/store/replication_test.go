package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"umac/internal/core"
)

func compactJSON(t *testing.T, raw []byte) string {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatalf("compact %q: %v", raw, err)
	}
	return buf.String()
}

// replicateAll drains primary's tail into follower until follower's applied
// offset reaches primary's, failing the test on any error.
func replicateAll(t *testing.T, primary, follower *Store) {
	t.Helper()
	for follower.LastSeq() < primary.LastSeq() {
		recs, _, err := primary.TailSince(follower.LastSeq(), 100)
		if err != nil {
			t.Fatalf("tail from %d: %v", follower.LastSeq(), err)
		}
		if len(recs) == 0 {
			t.Fatalf("tail from %d returned no records below last seq %d",
				follower.LastSeq(), primary.LastSeq())
		}
		for _, rec := range recs {
			if err := follower.ApplyReplicated(rec); err != nil {
				t.Fatalf("apply seq %d: %v", rec.Seq, err)
			}
		}
	}
}

// assertSameContents fails unless both stores hold identical entities
// (kind, key, version, data) for every kind.
func assertSameContents(t *testing.T, want, got *Store) {
	t.Helper()
	kinds := want.Kinds()
	if fmt.Sprint(kinds) != fmt.Sprint(got.Kinds()) {
		t.Fatalf("kinds: want %v, got %v", kinds, got.Kinds())
	}
	for _, kind := range kinds {
		we, ge := want.List(kind), got.List(kind)
		if len(we) != len(ge) {
			t.Fatalf("kind %s: want %d entities, got %d", kind, len(we), len(ge))
		}
		for i := range we {
			// Compare compacted JSON: a snapshot round-trip may reindent
			// Data without changing its value.
			if we[i].Key != ge[i].Key || we[i].Version != ge[i].Version ||
				compactJSON(t, we[i].Data) != compactJSON(t, ge[i].Data) {
				t.Fatalf("kind %s entity %d: want %+v, got %+v", kind, i, we[i], ge[i])
			}
		}
	}
}

func TestReplicationTailAndApply(t *testing.T) {
	primary := New()
	primary.EnableReplication(0)
	for i := 0; i < 20; i++ {
		if _, err := primary.Put("doc", fmt.Sprintf("k%02d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	if err := primary.Delete("doc", "k03"); err != nil {
		t.Fatal(err)
	}
	if primary.LastSeq() != 21 {
		t.Fatalf("primary seq = %d, want 21", primary.LastSeq())
	}

	follower := New()
	replicateAll(t, primary, follower)
	assertSameContents(t, primary, follower)
	if follower.Exists("doc", "k03") {
		t.Fatal("delete not replicated")
	}

	// Idempotent re-delivery: re-applying an old record is a silent no-op.
	recs, _, err := primary.TailSince(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := follower.ApplyReplicated(recs[0]); err != nil {
		t.Fatalf("duplicate apply: %v", err)
	}
	// A gap is rejected without applying.
	bad := core.ReplRecord{Seq: follower.LastSeq() + 5, Op: core.ReplOpPut,
		Kind: "doc", Key: "gap", Data: []byte("1")}
	if err := follower.ApplyReplicated(bad); !errors.Is(err, ErrReplicationGap) {
		t.Fatalf("gap apply err = %v, want ErrReplicationGap", err)
	}
	if follower.Exists("doc", "gap") {
		t.Fatal("gapped record was applied")
	}
}

func TestReplicationSnapshotBootstrap(t *testing.T) {
	// A durable primary: sequence numbers advance from the first write,
	// even before replication is enabled.
	primary, err := Open(filepath.Join(t.TempDir(), "primary.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	// Writes BEFORE EnableReplication are not in the tail window; a
	// follower must bootstrap from the snapshot.
	for i := 0; i < 10; i++ {
		if _, err := primary.Put("doc", fmt.Sprintf("k%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	primary.EnableReplication(4)

	follower := New()
	if _, _, err := follower.TailSince(0, 10); !errors.Is(err, ErrReplicationDisabled) {
		t.Fatalf("tail on non-replicating store err = %v", err)
	}
	if _, _, err := primary.TailSince(0, 10); !errors.Is(err, ErrReplicationTruncated) {
		t.Fatalf("tail before window err = %v, want ErrReplicationTruncated", err)
	}

	snap := primary.ReplicationSnapshot()
	if err := follower.LoadReplicationSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if follower.LastSeq() != primary.LastSeq() {
		t.Fatalf("follower seq = %d, want %d", follower.LastSeq(), primary.LastSeq())
	}
	assertSameContents(t, primary, follower)

	// Tail the deltas after the snapshot point.
	if _, err := primary.Put("doc", "post", "p"); err != nil {
		t.Fatal(err)
	}
	replicateAll(t, primary, follower)
	assertSameContents(t, primary, follower)

	// Window overflow (cap 4): a follower left far behind gets truncated.
	for i := 0; i < 10; i++ {
		if _, err := primary.Put("doc", "hot", i); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := primary.TailSince(snap.Seq, 100); !errors.Is(err, ErrReplicationTruncated) {
		t.Fatalf("overflowed tail err = %v, want ErrReplicationTruncated", err)
	}
}

func TestReplWatchWakesOnWrite(t *testing.T) {
	s := New()
	s.EnableReplication(0)
	ch := s.ReplWatch()
	done := make(chan struct{})
	go func() {
		<-ch
		close(done)
	}()
	if _, err := s.Put("doc", "k", 1); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("ReplWatch not woken by write")
	}
}

// TestFollowerRestartResumesFromAppliedOffset is the crash-during-replication
// case: a durable follower is hard-killed mid-stream (no snapshot, no Close)
// and a second instance opened from the same path must resume from its
// applied WAL offset — applying the remainder exactly once, with no
// duplicate and no lost record.
func TestFollowerRestartResumesFromAppliedOffset(t *testing.T) {
	primary := New()
	primary.EnableReplication(0)
	for i := 0; i < 30; i++ {
		if _, err := primary.Put("doc", fmt.Sprintf("k%02d", i), map[string]int{"v": i}); err != nil {
			t.Fatal(err)
		}
		// Interleave overwrites and deletes so versions matter.
		if i%5 == 0 {
			if _, err := primary.Put("doc", fmt.Sprintf("k%02d", i), map[string]int{"v": i * 10}); err != nil {
				t.Fatal(err)
			}
		}
		if i%7 == 3 {
			if err := primary.Delete("doc", fmt.Sprintf("k%02d", i)); err != nil {
				t.Fatal(err)
			}
		}
	}

	path := filepath.Join(t.TempDir(), "follower.json")
	f1, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// Apply only the first half of the stream, then "crash" (no Close).
	half := primary.LastSeq() / 2
	for f1.LastSeq() < half {
		recs, _, err := primary.TailSince(f1.LastSeq(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := f1.ApplyReplicated(recs[0]); err != nil {
			t.Fatal(err)
		}
	}

	f2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.LastSeq() != half {
		t.Fatalf("restarted follower resumes at %d, want %d", f2.LastSeq(), half)
	}
	replicateAll(t, primary, f2)
	assertSameContents(t, primary, f2)

	// And a third incarnation after a clean snapshot+restart still resumes
	// at the right offset (offset travels through the snapshot file too).
	if err := f2.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	f3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f3.Close()
	if f3.LastSeq() != primary.LastSeq() {
		t.Fatalf("post-snapshot restart resumes at %d, want %d", f3.LastSeq(), primary.LastSeq())
	}
	assertSameContents(t, primary, f3)
}

// TestReplicatedVersionsMatchPrimary pins down that replication preserves
// version counters exactly: a promoted follower must continue the optimistic
// concurrency sequence where the primary left off.
func TestReplicatedVersionsMatchPrimary(t *testing.T) {
	primary := New()
	primary.EnableReplication(0)
	for i := 0; i < 3; i++ {
		if _, err := primary.Put("doc", "k", i); err != nil {
			t.Fatal(err)
		}
	}
	follower := New()
	replicateAll(t, primary, follower)
	e, err := follower.Get("doc", "k", nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.Version != 3 {
		t.Fatalf("replicated version = %d, want 3", e.Version)
	}
	// Conditional write against the replicated version succeeds (promotion).
	if _, err := follower.PutIfVersion("doc", "k", 3, "promoted"); err != nil {
		t.Fatal(err)
	}
}
