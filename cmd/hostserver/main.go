// Command hostserver runs one of the prototype Host applications from
// Section VI of the paper: the online storage service or the online photo
// gallery. Both start in built-in ACL mode; users delegate to an AM through
// the pairing flow (visit the printed pairing URL).
//
// Usage:
//
//	hostserver -app storage -addr :8081 -host-id storage
//	hostserver -app gallery -addr :8082 -host-id gallery
package main

import (
	"flag"
	"log"
	"net/http"

	"umac/internal/apps/gallery"
	"umac/internal/apps/storage"
	"umac/internal/core"
)

func main() {
	var (
		app     = flag.String("app", "storage", "application to run: storage | gallery")
		addr    = flag.String("addr", ":8081", "listen address")
		hostID  = flag.String("host-id", "", "protocol host identity (default = app name)")
		baseURL = flag.String("base-url", "", "externally reachable URL (default http://localhost<addr>)")
	)
	flag.Parse()

	id := core.HostID(*hostID)
	if id == "" {
		id = core.HostID(*app)
	}
	base := *baseURL
	if base == "" {
		base = "http://localhost" + *addr
	}

	var handler http.Handler
	switch *app {
	case "storage":
		a := storage.New(storage.Config{HostID: id})
		a.Enforcer.SetBaseURL(base)
		handler = a.Handler()
	case "gallery":
		a := gallery.New(gallery.Config{HostID: id})
		a.Enforcer.SetBaseURL(base)
		handler = a.Handler()
	default:
		log.Fatalf("hostserver: unknown app %q (want storage or gallery)", *app)
	}

	log.Printf("hostserver: %s (%s) listening on %s", *app, id, *addr)
	log.Printf("hostserver: pair with an AM by driving a browser through the enforcer's pairing URL")
	if err := http.ListenAndServe(*addr, handler); err != nil {
		log.Fatalf("hostserver: %v", err)
	}
}
