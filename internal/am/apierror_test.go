package am

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"umac/internal/core"
	"umac/internal/httpsig"
	"umac/internal/identity"
	"umac/internal/policy"
	"umac/internal/webutil"
)

// envelope mirrors the wire form of the structured error body, including
// the legacy "error" member.
type envelope struct {
	Code        string `json:"code"`
	Status      int    `json:"status"`
	Message     string `json:"message"`
	Retryable   bool   `json:"retryable"`
	RequestID   string `json:"request_id"`
	LegacyError string `json:"error"`
}

// TestErrorEnvelopeByClass drives one representative endpoint per error
// class and asserts the full core.APIError shape: stable code, matching
// status, non-empty message, request ID, problem content type, and the
// legacy "error" member for pre-v1 readers.
func TestErrorEnvelopeByClass(t *testing.T) {
	f := newHTTPFixture(t)

	// Fixture state: bob's pairing + policy for the denied/forbidden rows.
	code, _ := f.am.ApprovePairing(core.PairingRequest{Host: "webpics", User: "bob"})
	pr, err := f.am.ExchangeCode(code, "webpics")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.am.RegisterRealm(pr.PairingID, core.ProtectRequest{Realm: "travel"}); err != nil {
		t.Fatal(err)
	}
	pol, _ := f.am.CreatePolicy("bob", simplePolicy("bob"))
	if err := f.am.LinkGeneral("bob", "travel", pol.ID); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name       string
		user       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"unauth session route", "", "GET", "/v1/policies", "", 401, core.CodeUnauthenticated},
		{"unsigned host route", "", "POST", "/v1/api/decision", "{}", 401, core.CodeSignatureInvalid},
		{"bad json", "", "POST", "/v1/token", "{nope", 400, core.CodeBadRequest},
		{"policy not found", "bob", "GET", "/v1/policies/pol-none", "", 404, core.CodeNotFound},
		{"ticket not found", "", "GET", "/v1/token/status?ticket=ticket-none", "", 404, core.CodeNotFound},
		{"pairing not found", "bob", "DELETE", "/v1/pairings/pair-none", "", 404, core.CodeNotPaired},
		{"unknown realm", "", "POST", "/v1/token",
			`{"requester":"r","subject":"x","host":"webpics","realm":"ghosts","resource":"p","action":"read"}`,
			404, core.CodeUnknownRealm},
		{"policy deny", "", "POST", "/v1/token",
			`{"requester":"r","subject":"x","host":"webpics","realm":"travel","resource":"p","action":"write"}`,
			403, core.CodeAccessDenied},
		{"foreign owner", "mallory", "GET", "/v1/policies?owner=bob", "", 403, core.CodeForbidden},
		{"bad pairing code", "", "POST", "/v1/api/pair/exchange",
			`{"code":"code-bogus","host":"webpics"}`, 403, core.CodePairingCodeInvalid},
		{"bad page param", "bob", "GET", "/v1/audit?limit=potato", "", 400, core.CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var rdr io.Reader
			if tc.body != "" {
				rdr = strings.NewReader(tc.body)
			}
			req, err := http.NewRequest(tc.method, f.srv.URL+tc.path, rdr)
			if err != nil {
				t.Fatal(err)
			}
			if tc.user != "" {
				req.Header.Set(identity.DefaultUserHeader, tc.user)
			}
			if tc.body != "" {
				req.Header.Set("Content-Type", "application/json")
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			if ct := resp.Header.Get("Content-Type"); ct != webutil.ProblemContentType {
				t.Errorf("content type = %q", ct)
			}
			var e envelope
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatal(err)
			}
			if e.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", e.Code, tc.wantCode)
			}
			if e.Status != tc.wantStatus {
				t.Errorf("body status = %d, want %d", e.Status, tc.wantStatus)
			}
			if e.Message == "" || e.LegacyError != e.Message {
				t.Errorf("message = %q, legacy error = %q", e.Message, e.LegacyError)
			}
			if e.RequestID == "" || e.RequestID != resp.Header.Get(webutil.RequestIDHeader) {
				t.Errorf("request id body=%q header=%q", e.RequestID, resp.Header.Get(webutil.RequestIDHeader))
			}
		})
	}
}

// TestSignatureReplayEnvelope asserts the replay class separately (it
// needs a real signed request replayed).
func TestSignatureReplayEnvelope(t *testing.T) {
	f := newHTTPFixture(t)
	code, _ := f.am.ApprovePairing(core.PairingRequest{Host: "webpics", User: "bob"})
	pr, err := f.am.ExchangeCode(code, "webpics")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"pairing_id":"x","user":"bob","realm":"travel"}`)
	req, _ := http.NewRequest(http.MethodPost, f.srv.URL+"/v1/api/protect", bytes.NewReader(payload))
	req.Header.Set("Content-Type", "application/json")
	if err := httpsig.Sign(req, pr.PairingID, pr.Secret); err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	req2, _ := http.NewRequest(http.MethodPost, f.srv.URL+"/v1/api/protect", bytes.NewReader(payload))
	for _, h := range []string{"X-Umac-Pairing", "X-Umac-Timestamp", "X-Umac-Nonce", "X-Umac-Signature"} {
		req2.Header.Set(h, req.Header.Get(h))
	}
	resp, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 409 {
		t.Fatalf("replay status = %d", resp.StatusCode)
	}
	var e envelope
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Code != core.CodeSignatureReplay || !e.Retryable {
		t.Fatalf("envelope = %+v, want retryable %s", e, core.CodeSignatureReplay)
	}
}

// TestLegacyAliasByteForByte proves the pre-v1 paths answer byte-for-byte
// identically to their /v1 canonical forms: same handler, same envelope.
// A fixed inbound X-Request-Id makes even the error envelopes comparable.
func TestLegacyAliasByteForByte(t *testing.T) {
	f := newHTTPFixture(t)
	f.do(t, "bob", http.MethodPost, "/v1/policies", simplePolicy("bob")).Body.Close()

	cases := []struct {
		name   string
		user   string
		method string
		legacy string // pre-v1 path; the v1 form is "/v1" + path
		body   string
	}{
		{"policy list", "bob", "GET", "/policies", ""},
		{"policy not found", "bob", "GET", "/policies/pol-none", ""},
		{"unauthenticated", "", "GET", "/pairings", ""},
		{"unsigned decision", "", "POST", "/api/decision", "{}"},
		{"bad token body", "", "POST", "/token", "{nope"},
		{"healthz", "", "GET", "/healthz", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fetch := func(path string) (int, string) {
				var rdr io.Reader
				if tc.body != "" {
					rdr = strings.NewReader(tc.body)
				}
				req, err := http.NewRequest(tc.method, f.srv.URL+path, rdr)
				if err != nil {
					t.Fatal(err)
				}
				req.Header.Set(webutil.RequestIDHeader, "req-fixed-for-diff")
				if tc.user != "" {
					req.Header.Set(identity.DefaultUserHeader, tc.user)
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				b, err := io.ReadAll(resp.Body)
				if err != nil {
					t.Fatal(err)
				}
				return resp.StatusCode, string(b)
			}
			legacyStatus, legacyBody := fetch(tc.legacy)
			v1Status, v1Body := fetch("/v1" + tc.legacy)
			if legacyStatus != v1Status {
				t.Fatalf("status legacy=%d v1=%d", legacyStatus, v1Status)
			}
			if legacyBody != v1Body {
				t.Fatalf("body mismatch:\nlegacy: %s\nv1:     %s", legacyBody, v1Body)
			}
		})
	}
}

// TestPairingDeleteRoute covers the RESTful revocation: DELETE
// /v1/pairings/{id} revokes, the legacy POST …/revoke alias still works,
// and unknown IDs return the structured not_paired envelope.
func TestPairingDeleteRoute(t *testing.T) {
	f := newHTTPFixture(t)
	pairOnce := func() string {
		code, _ := f.am.ApprovePairing(core.PairingRequest{Host: "webpics", User: "bob"})
		pr, err := f.am.ExchangeCode(code, "webpics")
		if err != nil {
			t.Fatal(err)
		}
		return pr.PairingID
	}

	id := pairOnce()
	resp := f.do(t, "bob", http.MethodDelete, "/v1/pairings/"+id, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	if body := decodeBody[map[string]string](t, resp); body["revoked"] != id {
		t.Fatalf("body = %v", body)
	}
	if _, ok := f.am.PairingSecret(id); ok {
		t.Fatal("revoked pairing still verifies")
	}

	// Legacy POST alias.
	id2 := pairOnce()
	resp = f.do(t, "bob", http.MethodPost, "/pairings/"+id2+"/revoke", map[string]string{})
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("legacy revoke status = %d", resp.StatusCode)
	}

	// Unknown ID → structured envelope.
	resp = f.do(t, "bob", http.MethodDelete, "/v1/pairings/pair-ghost", nil)
	defer resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("unknown delete status = %d", resp.StatusCode)
	}
	var e envelope
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Code != core.CodeNotPaired {
		t.Fatalf("code = %q", e.Code)
	}
}

// TestListPagination exercises limit/offset + the page headers on the
// policies and audit endpoints.
func TestListPagination(t *testing.T) {
	f := newHTTPFixture(t)
	for i := 0; i < 5; i++ {
		p := simplePolicy("bob")
		p.Name = fmt.Sprintf("p-%d", i)
		f.do(t, "bob", http.MethodPost, "/v1/policies", p).Body.Close()
	}

	resp := f.do(t, "bob", http.MethodGet, "/v1/policies?limit=2&offset=2", nil)
	if resp.Header.Get(webutil.HeaderTotalCount) != "5" {
		t.Fatalf("total = %q", resp.Header.Get(webutil.HeaderTotalCount))
	}
	if resp.Header.Get(webutil.HeaderNextOffset) != "4" {
		t.Fatalf("next offset = %q", resp.Header.Get(webutil.HeaderNextOffset))
	}
	page := decodeBody[[]policy.Policy](t, resp)
	if len(page) != 2 {
		t.Fatalf("page size = %d", len(page))
	}

	// Pages tile the full set without overlap.
	seen := map[core.PolicyID]bool{}
	for off := 0; off < 5; off += 2 {
		resp := f.do(t, "bob", http.MethodGet, fmt.Sprintf("/v1/policies?limit=2&offset=%d", off), nil)
		for _, p := range decodeBody[[]policy.Policy](t, resp) {
			if seen[p.ID] {
				t.Fatalf("policy %s appeared twice", p.ID)
			}
			seen[p.ID] = true
		}
	}
	if len(seen) != 5 {
		t.Fatalf("tiled %d policies, want 5", len(seen))
	}

	// Audit pagination: 5 policy-created events for bob.
	resp = f.do(t, "bob", http.MethodGet, "/v1/audit?limit=3", nil)
	events := decodeBody[[]json.RawMessage](t, resp)
	if len(events) != 3 {
		t.Fatalf("audit page = %d", len(events))
	}
	// The frame headers reflect the REQUEST offset even though the audit
	// log windows at the source: offset 2 + 2 events → next offset 4.
	resp = f.do(t, "bob", http.MethodGet, "/v1/audit?limit=2&offset=2", nil)
	if got := resp.Header.Get(webutil.HeaderNextOffset); got != "4" {
		t.Fatalf("audit next offset = %q, want 4", got)
	}
	if got := resp.Header.Get(webutil.HeaderTotalCount); got != "5" {
		t.Fatalf("audit total = %q, want 5", got)
	}
	resp.Body.Close()

	// Past-the-end offsets are empty arrays, not errors or null.
	resp = f.do(t, "bob", http.MethodGet, "/v1/policies?offset=99", nil)
	if page := decodeBody[[]policy.Policy](t, resp); page == nil || len(page) != 0 {
		t.Fatalf("past-end page = %v", page)
	}
}

// TestReadyzDraining covers the load-balancer draining flow.
func TestReadyzDraining(t *testing.T) {
	f := newHTTPFixture(t)
	resp := f.do(t, "", http.MethodGet, "/v1/readyz", nil)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("ready status = %d", resp.StatusCode)
	}
	f.am.SetDraining(true)
	resp = f.do(t, "", http.MethodGet, "/v1/readyz", nil)
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("draining status = %d", resp.StatusCode)
	}
	var e envelope
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Code != core.CodeUnavailable || !e.Retryable {
		t.Fatalf("envelope = %+v", e)
	}
	// Serving routes keep answering while draining.
	resp = f.do(t, "", http.MethodGet, "/v1/healthz", nil)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz while draining = %d", resp.StatusCode)
	}
	f.am.SetDraining(false)
	resp = f.do(t, "", http.MethodGet, "/v1/readyz", nil)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("undrained status = %d", resp.StatusCode)
	}
}

// TestMetricsEndpoint asserts per-route counters accumulate — with legacy
// alias traffic landing in the canonical route's counter.
func TestMetricsEndpoint(t *testing.T) {
	f := newHTTPFixture(t)
	f.do(t, "bob", http.MethodGet, "/v1/policies", nil).Body.Close()
	f.do(t, "bob", http.MethodGet, "/policies", nil).Body.Close() // legacy alias
	f.do(t, "", http.MethodGet, "/v1/policies", nil).Body.Close() // 401

	resp := f.do(t, "", http.MethodGet, "/v1/metrics", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	var body struct {
		AM     string                           `json:"am"`
		Routes map[string]webutil.RouteSnapshot `json:"routes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	rs, ok := body.Routes["GET /v1/policies"]
	if !ok {
		t.Fatalf("routes = %v", body.Routes)
	}
	if rs.Count != 3 || rs.Status["2xx"] != 2 || rs.Status["4xx"] != 1 {
		t.Fatalf("route snapshot = %+v", rs)
	}
	if body.AM != "am" {
		t.Fatalf("am = %q", body.AM)
	}
}
