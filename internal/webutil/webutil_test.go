package webutil

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"umac/internal/core"
)

func TestWriteJSON(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteJSON(rec, http.StatusCreated, map[string]int{"n": 7})
	if rec.Code != 201 {
		t.Fatalf("code = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), `"n":7`) {
		t.Fatalf("body = %s", rec.Body.String())
	}
}

func TestWriteJSONNilBody(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteJSON(rec, http.StatusNoContent, nil)
	if rec.Code != 204 || rec.Body.Len() != 0 {
		t.Fatalf("code=%d body=%q", rec.Code, rec.Body.String())
	}
}

func TestWriteErrorAndErrorf(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, http.StatusForbidden, errors.New("nope"))
	if rec.Code != 403 || !strings.Contains(rec.Body.String(), `"error":"nope"`) {
		t.Fatalf("code=%d body=%s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	WriteErrorf(rec, http.StatusBadRequest, "bad %s", "thing")
	if rec.Code != 400 || !strings.Contains(rec.Body.String(), "bad thing") {
		t.Fatalf("code=%d body=%s", rec.Code, rec.Body.String())
	}
}

func TestStatusFor(t *testing.T) {
	cases := map[error]int{
		core.ErrAccessDenied:        403,
		core.ErrTokenInvalid:        401,
		core.ErrTokenScope:          401,
		core.ErrUnknownRealm:        404,
		core.ErrNotPaired:           404,
		errors.New("anything else"): 400,
	}
	for err, want := range cases {
		if got := StatusFor(err); got != want {
			t.Errorf("StatusFor(%v) = %d, want %d", err, got, want)
		}
	}
	// Wrapped errors map too.
	wrapped := errors.Join(errors.New("ctx"), core.ErrAccessDenied)
	if StatusFor(wrapped) != 403 {
		t.Error("wrapped error not unwrapped")
	}
}

type payload struct {
	Name string `json:"name"`
}

func postReq(body string) *http.Request {
	r, _ := http.NewRequest(http.MethodPost, "http://x/", strings.NewReader(body))
	return r
}

func TestReadJSON(t *testing.T) {
	var p payload
	if err := ReadJSON(postReq(`{"name":"a"}`), &p); err != nil || p.Name != "a" {
		t.Fatalf("p=%+v err=%v", p, err)
	}
	if err := ReadJSON(postReq(`{"name":"a","extra":1}`), &p); err == nil {
		t.Fatal("unknown field accepted")
	}
	if err := ReadJSON(postReq(`{"name":"a"}{"name":"b"}`), &p); err == nil {
		t.Fatal("trailing data accepted")
	}
	if err := ReadJSON(postReq(`{`), &p); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadJSONLoose(t *testing.T) {
	var p payload
	if err := ReadJSONLoose(postReq(`{"name":"a","extra":1}`), &p); err != nil || p.Name != "a" {
		t.Fatalf("p=%+v err=%v", p, err)
	}
	if err := ReadJSONLoose(postReq(`not json`), &p); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadJSONBodyLimit(t *testing.T) {
	big := strings.Repeat("x", MaxBodyBytes+100)
	var p payload
	err := ReadJSON(postReq(`{"name":"`+big+`"}`), &p)
	if err == nil {
		t.Fatal("oversized body accepted")
	}
}
