package pep

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"

	"umac/internal/core"
)

// DecisionCache caches AM decisions at the Host so "each subsequent request
// to a resource does not have to follow the entire protocol ... a Host does
// not have to issue an access control decision query to an Authorization
// Manager" (Section V.B.6). TTLs come from the AM per decision, giving the
// user control over caching (Section V.B.5).
type DecisionCache struct {
	mu      sync.RWMutex
	entries map[string]cacheEntry
	now     func() time.Time

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	permit  bool
	expires time.Time
}

// NewDecisionCache returns an empty cache.
func NewDecisionCache() *DecisionCache {
	return &DecisionCache{entries: make(map[string]cacheEntry), now: time.Now}
}

// SetClock overrides the cache's time source for tests.
func (c *DecisionCache) SetClock(now func() time.Time) { c.now = now }

// cacheKey derives the cache key. The token identifies the (requester,
// realm) grant; resource and action narrow it to the exact decision the AM
// issued ("whether an access control decision has been already obtained
// from AM for this Requester to access this particular resource").
func cacheKey(token string, res core.ResourceID, action core.Action) string {
	h := sha256.New()
	h.Write([]byte(token))
	h.Write([]byte{0})
	h.Write([]byte(res))
	h.Write([]byte{0})
	h.Write([]byte(action))
	return hex.EncodeToString(h.Sum(nil))
}

// Get returns the cached decision if present and fresh.
func (c *DecisionCache) Get(key string) (permit, ok bool) {
	c.mu.RLock()
	e, present := c.entries[key]
	c.mu.RUnlock()
	if !present || c.now().After(e.expires) {
		c.misses.Add(1)
		return false, false
	}
	c.hits.Add(1)
	return e.permit, true
}

// Put stores a decision for ttlSeconds.
func (c *DecisionCache) Put(key string, permit bool, ttlSeconds int) {
	if ttlSeconds <= 0 {
		return
	}
	c.mu.Lock()
	c.entries[key] = cacheEntry{permit: permit, expires: c.now().Add(time.Duration(ttlSeconds) * time.Second)}
	c.mu.Unlock()
}

// Invalidate drops every cached decision (e.g. after the user changes
// policies at the AM and the AM pushes an invalidation).
func (c *DecisionCache) Invalidate() {
	c.mu.Lock()
	c.entries = make(map[string]cacheEntry)
	c.mu.Unlock()
}

// Len returns the number of cached entries (fresh or stale).
func (c *DecisionCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Stats returns cumulative hit/miss counts.
func (c *DecisionCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
