package core

// This file defines the wire vocabulary of the sharded AM cluster surface
// (GET /v1/cluster and the owner-migration admin routes). A cluster
// partitions the decision space by resource owner: a consistent-hash ring
// (internal/cluster) maps every owner to exactly one shard, where a shard
// is one replication group (a primary plus its followers). Owner ownership
// can be overridden per owner — the mechanism live migration uses to flip
// an owner between shards without rehashing anyone else. See
// docs/PROTOCOL.md ("Cluster") and docs/OPERATIONS.md ("Sharded cluster").

// ShardInfo names one shard of a sharded AM cluster: a replication group
// addressed by its primary's base URL plus every serving endpoint
// (primary first, then followers) a client may fail over across.
type ShardInfo struct {
	// Name is the shard's stable identifier; it seeds the shard's points
	// on the consistent-hash ring, so renaming a shard remaps owners.
	Name string `json:"name"`
	// Primary is the base URL of the shard's primary (write) endpoint.
	Primary string `json:"primary"`
	// Endpoints lists every serving endpoint of the shard, primary
	// included. Clients spread reads and fail over across them.
	Endpoints []string `json:"endpoints,omitempty"`
}

// RingState is the versioned, serializable form of the consistent-hash
// ring: what PUT /v1/cluster/ring installs, what each node persists in its
// store (so a restart recovers the latest topology, not the boot flags),
// and what the rebalance coordinator plans against. Versions are totally
// ordered per deployment; a node rejects any state older than the one it
// holds, making ring pushes idempotent and safely retryable.
type RingState struct {
	// Version orders ring states; boot-flag rings are version 0 and every
	// pushed update must carry a strictly larger version.
	Version int64 `json:"version"`
	// Vnodes is the virtual-node count per shard (0 means the default).
	Vnodes int `json:"vnodes,omitempty"`
	// Shards is the full membership, draining shards included.
	Shards []ShardInfo `json:"shards"`
	// Draining names shards that stay addressable (their overrides and
	// wrong_shard hints still resolve) but own no hash points — the
	// transition state of a drain while owners move off them.
	Draining []string `json:"draining,omitempty"`
}

// ClusterInfo answers GET /v1/cluster: the ring every node of a sharded
// deployment is configured with, this node's own place in it, and the
// per-owner overrides currently in force. Clients rebuild their routing
// ring from it and refresh it when a wrong_shard answer proves it stale.
type ClusterInfo struct {
	// Shard is the name of the shard the answering node belongs to.
	Shard string `json:"shard"`
	// RingVersion is the version of the ring state in force on the node
	// (0 until a versioned ring has been pushed).
	RingVersion int64 `json:"ring_version"`
	// Vnodes is the virtual-node count per shard the ring was built with.
	Vnodes int `json:"vnodes"`
	// Shards is the full ring membership.
	Shards []ShardInfo `json:"shards"`
	// Draining names shards still addressable but owning no hash points.
	Draining []string `json:"draining,omitempty"`
	// Overrides pins owners to shards irrespective of the hash ring —
	// the live-migration cutover state, keyed by owner, valued by shard
	// name. Replicated within each shard like any other store state.
	Overrides map[string]string `json:"overrides,omitempty"`
}

// OwnerOverrideRequest is the body of PUT /v1/cluster/owners/{owner}: pin
// the owner to the named shard on the receiving node's shard group.
type OwnerOverrideRequest struct {
	// Shard is the name of the shard that owns the owner from now on.
	Shard string `json:"shard"`
}

// ClusterImportRequest is the body of POST /v1/cluster/import: replicated
// records captured from another shard (an owner-scoped snapshot or WAL
// tail) to install locally as ordinary writes. The receiving primary
// re-sequences them into its own WAL, so they replicate onward to its
// followers like any native mutation.
type ClusterImportRequest struct {
	// Records are applied in order; puts overwrite, deletes remove.
	Records []ReplRecord `json:"records"`
}

// ClusterImportResponse acknowledges an import with the number of records
// applied.
type ClusterImportResponse struct {
	// Applied counts the records installed.
	Applied int `json:"applied"`
}

// OwnerLoad is one owner's share of a shard's stored state: the per-owner
// record count the rebalance planner weighs moves by.
type OwnerLoad struct {
	// Owner is the resource owner.
	Owner UserID `json:"owner"`
	// Records counts the store records in the owner's closure (pairings,
	// realms, policies, links, groups, custodians, grants).
	Records int `json:"records"`
}

// OwnerStatsResponse answers GET /v1/cluster/owners: the per-owner load of
// the answering shard, restricted to owners the shard effectively owns
// (ring placement plus overrides).
type OwnerStatsResponse struct {
	// Shard is the answering node's shard.
	Shard string `json:"shard"`
	// RingVersion is the ring state the ownership view was computed under.
	RingVersion int64 `json:"ring_version"`
	// Owners lists the shard's owners with their record counts, sorted by
	// owner for determinism.
	Owners []OwnerLoad `json:"owners"`
}

// ClusterHealth summarizes a node's place in the sharded cluster on
// GET /v1/metrics: the per-shard load gauges the rebalance planner (and
// capacity dashboards) read.
type ClusterHealth struct {
	// Shard is the node's shard name.
	Shard string `json:"shard"`
	// RingVersion is the ring state version in force.
	RingVersion int64 `json:"ring_version"`
	// Owners counts distinct owners with state on this shard.
	Owners int `json:"owners"`
	// OwnerRecords counts store records across those owners' closures.
	OwnerRecords int `json:"owner_records"`
	// MaxOwnerRecords is the largest single owner's record count — the
	// skew gauge: rebalancing moves ~1/N owners, not 1/N records, so one
	// giant owner shows up here first.
	MaxOwnerRecords int `json:"max_owner_records"`
}

// Rebalance move phases, in execution order. A move checkpoints its phase
// through the coordinator's store before acting on it, so a killed
// coordinator resumes each owner exactly where it stopped.
const (
	// MovePending: planned, nothing shipped yet. Resuming reruns the move
	// from the start (safe: the owner is still pinned to its source).
	MovePending = "pending"
	// MoveCopied: snapshot + catch-up are on the target and the cutover is
	// about to flip. Resuming re-flips (idempotent) and drains from the
	// checkpointed offset — never re-imports a stale snapshot over newer
	// target writes.
	MoveCopied = "copied"
	// MoveDone: cutover complete, source drained, overrides cleared.
	// Resuming skips the owner entirely.
	MoveDone = "done"
)

// RebalanceMove is one planned owner move within a rebalance.
type RebalanceMove struct {
	// Owner is the owner being moved.
	Owner UserID `json:"owner"`
	// From and To name the losing and gaining shards.
	From string `json:"from"`
	To   string `json:"to"`
	// Phase is the move's checkpointed progress (MovePending, MoveCopied,
	// MoveDone).
	Phase string `json:"phase,omitempty"`
}

// Rebalance lifecycle states reported by RebalanceStatus.State.
const (
	// RebalanceRunning: the coordinator is executing (or resuming) the plan.
	RebalanceRunning = "running"
	// RebalanceDone: every planned move completed and the final ring is in
	// force everywhere.
	RebalanceDone = "done"
	// RebalanceAborted: the coordinator stopped cleanly at a move boundary;
	// unmoved owners stay pinned to their source shards.
	RebalanceAborted = "aborted"
	// RebalanceFailed: a move exhausted its retries; the plan resumes on
	// a coordinator restart or a re-POST of the same target.
	RebalanceFailed = "failed"
)

// RebalanceRequest is the body of POST /v1/rebalance: rebalance the
// cluster onto the target ring.
type RebalanceRequest struct {
	// Target is the ring to converge on. Its version must exceed the ring
	// version currently in force. A shard being drained stays in
	// Target.Shards and is named in Target.Draining; once every owner has
	// moved off it the coordinator pushes a final state (Version+1) with
	// the shard removed entirely.
	Target RingState `json:"target"`
	// BatchSize caps how many owners move between progress checkpoints of
	// the plan state; 0 means the coordinator default.
	BatchSize int `json:"batch_size,omitempty"`
	// MovesPerSec rate-limits migration starts; 0 means unlimited.
	MovesPerSec float64 `json:"moves_per_sec,omitempty"`
}

// RebalanceStatus answers GET /v1/rebalance (and rides the rebalance
// lifecycle events): the coordinator's checkpointed progress.
type RebalanceStatus struct {
	// ID identifies the plan (stable across coordinator restarts).
	ID string `json:"id"`
	// State is the lifecycle state (RebalanceRunning, RebalanceDone,
	// RebalanceAborted, RebalanceFailed; "" when no plan exists).
	State string `json:"state"`
	// RingVersion is the target ring version being converged on.
	RingVersion int64 `json:"ring_version"`
	// Total, Done and Remaining count planned owner moves.
	Total     int `json:"total"`
	Done      int `json:"done"`
	Remaining int `json:"remaining"`
	// Moving is the owner currently in flight ("" between moves).
	Moving UserID `json:"moving,omitempty"`
	// Error carries the terminal error of a failed plan.
	Error string `json:"error,omitempty"`
}
