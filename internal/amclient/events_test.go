package amclient

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"umac/internal/core"
)

// These tests prove EventStream's reconnect contract against a scripted
// SSE server: a connection severed mid-stream is redialed with the
// cursor as Last-Event-ID and the subscriber observes every event
// exactly once; Connect returns only once the subscription is
// registered server-side; a permanent rejection fails fast to the
// polling fallback instead of burning the retry budget.

// scriptedSSE serves GET /v1/events, recording each connection's
// Last-Event-ID and delegating the frames to a per-connection script.
type scriptedSSE struct {
	srv *httptest.Server

	mu      sync.Mutex
	cursors []string // Last-Event-ID presented by each connection, in order

	// serve writes frames for the n-th connection (0-based); returning
	// severs the connection.
	serve func(n int, w http.ResponseWriter, flush func())
}

func newScriptedSSE(t *testing.T) *scriptedSSE {
	t.Helper()
	s := &scriptedSSE{}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/events", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		n := len(s.cursors)
		s.cursors = append(s.cursors, r.Header.Get("Last-Event-ID"))
		s.mu.Unlock()
		fl := w.(http.Flusher)
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, ": stream\n\n")
		fl.Flush()
		s.serve(n, w, fl.Flush)
	})
	s.srv = httptest.NewServer(mux)
	t.Cleanup(s.srv.Close)
	return s
}

func (s *scriptedSSE) cursorOf(conn int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if conn >= len(s.cursors) {
		return "<no such connection>"
	}
	return s.cursors[conn]
}

func (s *scriptedSSE) connections() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cursors)
}

func sseFrame(w http.ResponseWriter, flush func(), seq int64) {
	e := core.Event{Seq: seq, Type: core.EventInvalidation,
		Invalidation: &core.InvalidationPush{Owner: "bob"}}
	data, _ := json.Marshal(e)
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data)
	flush()
}

// TestEventStreamReconnectNoLossNoDup: the server severs the connection
// after three events; the stream must redial presenting the cursor and
// the consumer must see 1..6 exactly once — the client half of the
// resume contract (the server half lives in internal/am's suite).
func TestEventStreamReconnectNoLossNoDup(t *testing.T) {
	s := newScriptedSSE(t)
	s.serve = func(n int, w http.ResponseWriter, flush func()) {
		switch n {
		case 0:
			for seq := int64(1); seq <= 3; seq++ {
				sseFrame(w, flush, seq)
			}
			// return: connection dies mid-stream
		case 1:
			for seq := int64(4); seq <= 6; seq++ {
				sseFrame(w, flush, seq)
			}
		default:
			t.Errorf("unexpected connection #%d", n)
		}
	}
	c := New(Config{BaseURL: s.srv.URL})
	stream := c.Stream(StreamConfig{Backoff: time.Millisecond})
	defer stream.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	var seqs []int64
	for len(seqs) < 6 {
		e, err := stream.Next(ctx)
		if err != nil {
			t.Fatalf("Next after %v: %v", seqs, err)
		}
		seqs = append(seqs, e.Seq)
	}
	for i, seq := range seqs {
		if seq != int64(i+1) {
			t.Fatalf("event sequence %v: missed or duplicated delivery", seqs)
		}
	}
	if got := s.cursorOf(1); got != "3" {
		t.Fatalf("reconnect presented Last-Event-ID %q, want \"3\"", got)
	}
	if stream.Cursor() != 6 {
		t.Fatalf("cursor = %d, want 6", stream.Cursor())
	}
}

// TestEventStreamResyncAdoptsCursor: a resync frame's seq is the next
// valid resume cursor even when it moves BACKWARD — the shape of a server
// restart, where the sequence space reset. Keeping the old, larger cursor
// would re-trigger a resync on every reconnect forever.
func TestEventStreamResyncAdoptsCursor(t *testing.T) {
	s := newScriptedSSE(t)
	park := make(chan struct{})
	defer close(park)
	s.serve = func(n int, w http.ResponseWriter, flush func()) {
		switch n {
		case 0: // pre-restart lifetime: head at 6
			for seq := int64(5); seq <= 6; seq++ {
				sseFrame(w, flush, seq)
			}
		case 1: // restarted server: cursor 6 is ahead of its head (1)
			re := core.Event{Seq: 1, Type: core.EventResync}
			data, _ := json.Marshal(re)
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", re.Seq, re.Type, data)
			flush()
			sseFrame(w, flush, 2)
		case 2: // reconnect after the new lifetime's events
			<-park
		default:
			t.Errorf("unexpected connection #%d", n)
		}
	}
	c := New(Config{BaseURL: s.srv.URL})
	stream := c.Stream(StreamConfig{Backoff: time.Millisecond})
	defer stream.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	var got []core.Event
	for len(got) < 4 {
		e, err := stream.Next(ctx)
		if err != nil {
			t.Fatalf("Next after %d events: %v", len(got), err)
		}
		got = append(got, e)
	}
	if got[2].Type != core.EventResync {
		t.Fatalf("post-restart frame type = %q, want resync", got[2].Type)
	}
	if stream.Cursor() != 2 {
		t.Fatalf("cursor = %d, want 2 (adopted from the new lifetime)", stream.Cursor())
	}
	if cur := s.cursorOf(1); cur != "6" {
		t.Fatalf("restart reconnect presented Last-Event-ID %q, want \"6\"", cur)
	}
	// Drive one more Next so the stream redials connection #2 — the
	// presented cursor must be the adopted one, not the stale 6.
	go stream.Next(ctx) //nolint:errcheck // parked until Close
	deadline := time.Now().Add(10 * time.Second)
	for s.connections() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("stream never redialed after the resync")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if cur := s.cursorOf(2); cur != "2" {
		t.Fatalf("post-resync reconnect presented Last-Event-ID %q, want \"2\"", cur)
	}
}

// TestEventStreamConnectRegistersSubscription: Connect must not return
// before the server has accepted the subscription, so an event published
// right after Connect cannot be missed.
func TestEventStreamConnectRegistersSubscription(t *testing.T) {
	s := newScriptedSSE(t)
	release := make(chan struct{})
	s.serve = func(n int, w http.ResponseWriter, flush func()) { <-release }
	defer close(release)

	c := New(Config{BaseURL: s.srv.URL})
	stream := c.Stream(StreamConfig{})
	defer stream.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := stream.Connect(ctx); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if s.connections() == 0 {
		t.Fatal("Connect returned with no server-side subscription")
	}
	// A second Connect on the live stream is a no-op.
	if err := stream.Connect(ctx); err != nil {
		t.Fatalf("re-Connect: %v", err)
	}
	if s.connections() != 1 {
		t.Fatalf("re-Connect dialed again: %d connections", s.connections())
	}
}

// TestEventStreamPermanentRejectionFailsFast: a non-retryable status
// (here a plain 404, the shape of an AM without the events surface) must
// surface ErrStreamFailed on the first attempt — the caller's signal to
// fall back to polling — not burn the whole backoff budget.
func TestEventStreamPermanentRejectionFailsFast(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no such route", http.StatusNotFound)
	}))
	defer srv.Close()
	c := New(Config{BaseURL: srv.URL})
	stream := c.Stream(StreamConfig{Backoff: time.Second})
	defer stream.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if _, err := stream.Next(ctx); !errors.Is(err, ErrStreamFailed) {
		t.Fatalf("err = %v, want ErrStreamFailed", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("rejection took %v; a permanent 4xx must not back off", elapsed)
	}
	if err := stream.Connect(ctx); !errors.Is(err, ErrStreamFailed) {
		t.Fatalf("Connect err = %v, want ErrStreamFailed", err)
	}
}

// TestEventStreamCloseUnblocksNext: Close severs a parked read
// immediately and future calls fail with ErrStreamFailed.
func TestEventStreamCloseUnblocksNext(t *testing.T) {
	s := newScriptedSSE(t)
	release := make(chan struct{})
	s.serve = func(n int, w http.ResponseWriter, flush func()) { <-release }
	defer close(release)

	c := New(Config{BaseURL: s.srv.URL})
	stream := c.Stream(StreamConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := stream.Connect(ctx); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := stream.Next(ctx)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let Next park on the body read
	stream.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("Next returned an event after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next still parked after Close")
	}
	if _, err := stream.Next(ctx); !errors.Is(err, ErrStreamFailed) {
		t.Fatalf("post-Close Next err = %v, want ErrStreamFailed", err)
	}
}
